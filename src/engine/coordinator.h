// Coordinator: the out-of-process counterpart of ShardedDatabase
// (src/engine/shard.h), driving the same scatter-gather over RemoteShard
// connections to shard worker processes instead of over in-process shard
// engines.
//
// Like the in-process facade, the coordinator keeps a FULL local Database
// replica that replays exactly the load / interning sequence of an
// unsharded engine -- the documented 2x memory trade-off that buys
// bit-identity. Everything that gathers in process (joins, projections,
// aggregates, unions) evaluates on that replica; only the distributable
// Select/Rename fragment (ShardDrivingTable) scatters to the workers. The
// workers compute each surviving row's probability themselves through
// IsolatedAnnotationDistribution -- the per-row step II pipeline that is
// independent of pool history -- so the gathered numbers are bit-identical
// to the in-process scatter at any shard count.
//
// Degraded mode: any transport failure marks that worker down (WorkerDown)
// and every distributed path falls back to the local replica, with a
// "warning: worker N down..." line attached to the result. Values stay
// bit-identical -- chains intern nothing into the pool, so the fallback
// leaves the replica's pool exactly as the healthy path would. A down
// worker stays down until Respawn() hands the coordinator a fresh
// connection (via the server-supplied spawner), after which the worker is
// rebuilt by a full resync: variable table, every partition, every remote
// chain view.

#ifndef PVCDB_ENGINE_COORDINATOR_H_
#define PVCDB_ENGINE_COORDINATOR_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/engine/database.h"
#include "src/engine/remote_shard.h"
#include "src/engine/shard.h"

namespace pvcdb {

/// One executed query (or view print) over the coordinator: the rendered
/// tuples, the per-row probabilities in global row order, and where the
/// rows came from. `local_result` is valid only when !distributed (it is
/// what conditional aggregate distributions are computed against;
/// distributed chain results never have aggregation columns).
struct QueryRun {
  Schema schema;
  std::string text;
  std::vector<double> probabilities;
  bool distributed = false;
  PvcTable local_result{Schema{}};
  std::vector<std::string> warnings;  ///< Degraded-mode notices, if any.
  /// Producer-private state kept alive with the run (the in-process
  /// backend parks its ShardedResult here for aggregate follow-ups).
  std::shared_ptr<void> backend_state;
};

class Coordinator {
 public:
  /// Replaces a down worker: connects/spawns shard `shard` and fills
  /// `*out` with a fresh, NOT yet handshaken RemoteShard. False + error on
  /// failure. Supplied by the server (which knows whether workers are
  /// forked children or standalone processes to re-dial).
  using WorkerSpawner =
      std::function<bool(uint32_t shard, RemoteShard* out, std::string* error)>;

  /// Takes ownership of one connected RemoteShard per shard and performs
  /// the kHello handshake on each (a failed handshake marks that worker
  /// down; the coordinator still starts, degraded).
  Coordinator(SemiringKind semiring, std::vector<RemoteShard> workers,
              WorkerSpawner spawner);

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  size_t num_shards() const { return workers_.size(); }

  /// The full local replica (catalog, schemas, variable registry). Pool
  /// state is bit-identical to an in-process ShardedDatabase coordinator
  /// fed the same command sequence.
  Database& local() { return local_; }
  const Database& local() const { return local_; }

  // -- Catalog ------------------------------------------------------------

  /// Registers a tuple-independent table, routed by its first column:
  /// loads the local replica (fresh Bernoulli variables in global row
  /// order), then partitions across the live workers.
  void AddTupleIndependentTable(const std::string& name, Schema schema,
                                std::vector<std::vector<Cell>> rows,
                                std::vector<double> probabilities);

  bool HasTable(const std::string& name) const {
    return local_.HasTable(name);
  }
  std::vector<std::string> TableNames() const { return local_.TableNames(); }
  size_t NumRows(const std::string& name) const {
    return local_.table(name).NumRows();
  }

  /// Rows per shard (from the placement map, so it is exact even while
  /// workers are down).
  std::vector<size_t> ShardRowCounts(const std::string& name) const;

  // -- Mutations (stream through IVM on replica, owning worker, views) ----

  size_t InsertTuple(const std::string& table, std::vector<Cell> cells,
                     double p);
  size_t DeleteTuple(const std::string& table, const Cell& key);
  void UpdateProbability(VarId var, double p);

  // -- Queries ------------------------------------------------------------

  /// Evaluates `q`: scattered to the workers for the distributable
  /// fragment (all workers up), on the local replica otherwise. Rendered
  /// text and probabilities are bit-identical either way.
  QueryRun Run(const Query& q);

  /// P[alpha = v | present] for an aggregation column of a
  /// non-distributed run.
  Distribution ConditionalAggregateDistribution(const QueryRun& run,
                                                size_t row_index,
                                                const std::string& column);

  // -- Materialized views -------------------------------------------------

  /// Registers a view; the distributable fragment becomes a
  /// worker-maintained chain view (kRegisterChainView to every live
  /// worker), everything else registers on the local replica. Returns the
  /// view's row count.
  size_t RegisterView(const std::string& name, QueryPtr query,
                      std::vector<std::string>* warnings);

  bool HasView(const std::string& name) const;

  /// The view's tuples + cached probabilities (kViewProbs scatter for
  /// remote views; replica caches otherwise).
  QueryRun PrintView(const std::string& name);

  /// One diagnostics line per view, remote chain views first (matching
  /// ShardedDatabase::ViewInfos order and plan naming).
  std::vector<ShardedDatabase::ViewInfo> ViewInfos();

  // -- Worker management --------------------------------------------------

  bool WorkerUp(size_t s) const { return !workers_[s].down(); }
  pid_t WorkerPid(size_t s) const { return workers_[s].pid(); }

  /// Spawns a replacement for worker `s` and resyncs it in full:
  /// variables, every table partition, every remote chain view.
  bool Respawn(size_t s, std::string* error);

  /// Best-effort kShutdown broadcast to every live worker.
  void Shutdown();

 private:
  struct RemoteView {
    std::string name;
    std::string driving;
    QueryPtr query;
  };

  /// True when `q` can scatter: the same predicate as ShardedDatabase::Run.
  bool Distributable(const Query& q, std::string* driving) const;

  /// Ships any variables the worker has not seen yet (contiguous run; the
  /// worker checks the ids line up). Throws WorkerDown on failure.
  void SyncVarsTo(size_t s);

  /// Sends `kind` to every live worker (send-all-then-recv-all scatter)
  /// and decodes each reply into `replies[s]`. Returns false if any worker
  /// was down or died mid-scatter (partial replies are drained so
  /// sequencing survives). A worker-side CheckError is rethrown after the
  /// drain -- the caller's request was bad, the workers are fine.
  template <typename Reply>
  bool Scatter(MsgKind kind, const std::string& payload, MsgKind expect,
               std::vector<Reply>* replies);

  /// Merges per-worker chain rows by global driving-row order and renders
  /// them through a scratch pool (annotations of the distributable
  /// fragment are single variables, so the rendering matches the
  /// replica's).
  QueryRun GatherChainRows(const Schema& schema,
                           std::vector<ChainResultMsg> replies);

  /// The local fallback for a distributable chain: evaluate on the
  /// replica, compute per-row probabilities through the identical isolated
  /// pipeline. Bit-identical values; chains intern nothing, so the
  /// replica's pool is undisturbed.
  QueryRun EvalChainLocally(const Query& q);

  /// Builds worker `s`'s partition of `name` from the replica + placement.
  LoadPartitionMsg PartitionFor(const std::string& name, size_t s) const;

  void DeleteRowAt(const std::string& table, size_t row_index);

  RemoteView* FindRemoteView(const std::string& name);
  std::string DownWarning(const char* what) const;

  /// Marks `s` down after a state-divergence error (a healthy worker
  /// rejected a mutation it should have accepted -- its replica state can
  /// no longer be trusted).
  void MarkDiverged(size_t s, const std::string& why);

  SemiringKind semiring_;
  FnvShardRouter router_;
  Database local_;
  std::vector<RemoteShard> workers_;
  WorkerSpawner spawner_;
  std::vector<size_t> synced_vars_;  ///< Per worker: variables shipped.
  /// Per table: global row -> (shard, row within the shard's partition).
  std::map<std::string, std::vector<std::pair<uint32_t, uint32_t>>>
      placements_;
  std::map<std::string, size_t> key_columns_;
  /// Per table: the annotation VarId of every global row (respawn resync).
  std::map<std::string, std::vector<VarId>> table_vars_;
  std::vector<RemoteView> remote_views_;
};

}  // namespace pvcdb

#endif  // PVCDB_ENGINE_COORDINATOR_H_
