// Coordinator: the out-of-process counterpart of ShardedDatabase
// (src/engine/shard.h), driving the same scatter-gather over RemoteShard
// connections to shard worker processes instead of over in-process shard
// engines.
//
// Like the in-process facade, the coordinator keeps a FULL local Database
// replica that replays exactly the load / interning sequence of an
// unsharded engine -- the documented 2x memory trade-off that buys
// bit-identity. Everything that gathers in process (joins, projections,
// aggregates, unions) evaluates on that replica; only the distributable
// Select/Rename fragment (ShardDrivingTable) scatters to the workers. The
// workers compute each surviving row's probability themselves through
// IsolatedAnnotationDistribution -- the per-row step II pipeline that is
// independent of pool history -- so the gathered numbers are bit-identical
// to the in-process scatter at any shard count.
//
// Degraded mode: any transport failure marks that worker down (WorkerDown)
// and every distributed path falls back to the local replica, with a
// "warning: worker N down..." line attached to the result. Values stay
// bit-identical -- chains intern nothing into the pool, so the fallback
// leaves the replica's pool exactly as the healthy path would. A down
// worker stays down until Respawn() hands the coordinator a fresh
// connection (via the server-supplied spawner), after which the worker is
// resynced -- by a tail replay when possible, by a full rebuild otherwise.
//
// Durability plane (protocol v2): every mutating request shipped to a
// worker is first appended to that shard's in-memory log (ShardLog), the
// coordinator-side mirror of the (lsn, chain) position the worker tracks.
// The log is what a correct worker at this shard must have applied, entry
// for entry -- so after a worker reconnect (standalone worker surviving a
// coordinator restart) or a respawn, ResyncWorker can ask the worker for
// its position (kReplayTail), prove with the chain CRC that its state is a
// prefix of the log, and ship just the missing tail (kShipWal) instead of
// retransmitting every partition. Any mismatch -- blank worker, diverged
// chain, log trimmed past the worker's position -- falls back to kReset
// plus a full rebuild from the replica's consolidated state, which also
// rebases the log so later tails stay valid.
//
// Variable sync is eager: FlushVars appends one kSyncVars entry to EVERY
// shard log (and ships it to live workers) before any data-plane entry
// that could reference a new variable. Because the flush points are
// functions of the logical mutation sequence alone, a recovery replay
// (DurableSession reapplying WAL records with replaying_ set, sends
// suppressed) reconstructs logs byte-identical to the ones a never-crashed
// coordinator would hold -- which is exactly what makes the post-recovery
// kReplayTail proof against surviving workers sound.

#ifndef PVCDB_ENGINE_COORDINATOR_H_
#define PVCDB_ENGINE_COORDINATOR_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/engine/database.h"
#include "src/engine/remote_shard.h"
#include "src/engine/shard.h"
#include "src/engine/wal.h"
#include "src/net/backoff.h"
#include "src/util/metrics.h"

namespace pvcdb {

/// Knobs of the coordinator's fault-tolerance plane (server flags
/// --rpc-timeout-ms / --heartbeat-ms / --auto-respawn). Heartbeats and
/// auto-respawn run inside HeartbeatTick(), driven by the server's poll
/// loop — or directly by tests, which also substitute `clock`.
struct FaultToleranceOptions {
  /// Deadline for every worker RPC frame send/receive; kNoDeadline blocks
  /// forever (the pre-fault-tolerance behaviour).
  int rpc_deadline_ms = kNoDeadline;
  /// Heartbeat interval; < 0 disables the cycle (ticks become no-ops).
  int heartbeat_ms = -1;
  /// Consecutive missed beats before a worker is reported down (one miss
  /// reports it suspect).
  int down_after_misses = 2;
  /// Respawn+resync a down worker from the heartbeat cycle, paced by
  /// `respawn_backoff` and fused by the circuit breaker below.
  bool auto_respawn = false;
  /// Circuit breaker: this many respawn failures within `respawn_window_ms`
  /// leave the shard degraded (no further respawn attempts until the
  /// window drains) instead of respawn-thrashing.
  int respawn_max_failures = 3;
  uint64_t respawn_window_ms = 10000;
  BackoffPolicy respawn_backoff;
  /// Mock seam for tests; nullptr means Clock::Real().
  Clock* clock = nullptr;

  FaultToleranceOptions() {
    // Respawns are expensive (fork/dial + resync): pace them in hundreds
    // of milliseconds, not the connect-race defaults.
    respawn_backoff.base_ms = 100;
    respawn_backoff.max_ms = 5000;
  }
};

/// Health of one worker as the heartbeat cycle sees it. kSuspect after the
/// first missed beat (or any failed RPC between beats), kDown after
/// `down_after_misses` consecutive misses, kDegraded when the respawn
/// circuit breaker is open (the shard serves from the coordinator's local
/// replica until the window drains).
enum class WorkerHealth : uint8_t { kHealthy, kSuspect, kDown, kDegraded };

const char* WorkerHealthName(WorkerHealth health);

/// One executed query (or view print) over the coordinator: the rendered
/// tuples, the per-row probabilities in global row order, and where the
/// rows came from. `local_result` is valid only when !distributed (it is
/// what conditional aggregate distributions are computed against;
/// distributed chain results never have aggregation columns).
struct QueryRun {
  Schema schema;
  std::string text;
  std::vector<double> probabilities;
  bool distributed = false;
  PvcTable local_result{Schema{}};
  std::vector<std::string> warnings;  ///< Degraded-mode notices, if any.
  /// Producer-private state kept alive with the run (the in-process
  /// backend parks its ShardedResult here for aggregate follow-ups).
  std::shared_ptr<void> backend_state;
};

/// Outcome of one worker resync (a respawn or a post-recovery reconcile):
/// whether the worker needed a full rebuild, and how many mutation entries
/// / payload bytes were shipped to bring it current.
struct ResyncStats {
  bool full = false;
  uint64_t entries = 0;
  uint64_t bytes = 0;
};

class Coordinator {
 public:
  /// Replaces a down worker: connects/spawns shard `shard` and fills
  /// `*out` with a fresh, NOT yet handshaken RemoteShard. False + error on
  /// failure. Supplied by the server (which knows whether workers are
  /// forked children or standalone processes to re-dial).
  using WorkerSpawner =
      std::function<bool(uint32_t shard, RemoteShard* out, std::string* error)>;

  /// Takes ownership of one connected RemoteShard per shard and performs
  /// the kHello handshake on each (a failed handshake marks that worker
  /// down; the coordinator still starts, degraded).
  Coordinator(SemiringKind semiring, std::vector<RemoteShard> workers,
              WorkerSpawner spawner);

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  size_t num_shards() const { return workers_.size(); }

  /// The full local replica (catalog, schemas, variable registry). Pool
  /// state is bit-identical to an in-process ShardedDatabase coordinator
  /// fed the same command sequence.
  Database& local() { return local_; }
  const Database& local() const { return local_; }

  // -- Durability ----------------------------------------------------------

  /// Attaches / detaches the write-ahead log. Records are written by the
  /// replica (every coordinator mutation replays on it first), plus one
  /// coordinator-level kRegisterView record for distributable views, which
  /// never materialize on the replica.
  void set_wal(WalWriter* wal) { local_.set_wal(wal); }
  WalWriter* wal() const { return local_.wal(); }

  /// Recovery replay mode: mutations rebuild the replica, the placement
  /// bookkeeping and the per-shard logs, but nothing is sent to workers
  /// (ReconcileWorkers squares them up afterwards).
  void BeginReplay() { replaying_ = true; }
  void EndReplay() { replaying_ = false; }
  bool replaying() const { return replaying_; }

  /// Applies one recovered WAL op (the serving-stack counterpart of the
  /// Database-level ApplyWalOp in src/engine/snapshot.h). kReshard ops are
  /// ignored: in server mode topology is deployment configuration.
  void ApplyRecoveredOp(const WalOp& op);

  /// Rebuild hook: registers a table whose rows are annotated by existing
  /// variables (snapshot kCreateTable replay), then partitions it across
  /// the shard logs / live workers exactly like a fresh load.
  void AddVariableAnnotatedTable(const std::string& name, Schema schema,
                                 std::vector<std::vector<Cell>> rows,
                                 const std::vector<VarId>& vars,
                                 const std::string& key_column);

  /// Resyncs every live worker against its shard log after a recovery
  /// replay: a tail replay when the worker's (lsn, chain) position proves
  /// its state is a log prefix, a kReset + full rebuild otherwise. One
  /// human-readable summary line per worker in `*lines` (may be null).
  void ReconcileWorkers(std::vector<std::string>* lines);

  /// Snapshot-capture hooks (see CaptureState(const Coordinator&)).
  std::string KeyColumnName(const std::string& name) const;
  std::vector<std::pair<std::string, QueryPtr>> ViewCatalog() const;

  // -- Evaluation knobs ----------------------------------------------------

  /// Sets the replica's EvalOptions and broadcasts them to every live
  /// worker (kSetOptions). Not logged: every thread count computes
  /// bit-identical results, so parallelism is session state, not durable
  /// state; resyncs re-send the current options.
  void SetEvalOptions(int num_threads, int intra_tree_threads);

  // -- Catalog ------------------------------------------------------------

  /// Registers a tuple-independent table, routed by its first column:
  /// loads the local replica (fresh Bernoulli variables in global row
  /// order), then partitions across the live workers.
  void AddTupleIndependentTable(const std::string& name, Schema schema,
                                std::vector<std::vector<Cell>> rows,
                                std::vector<double> probabilities);

  bool HasTable(const std::string& name) const {
    return local_.HasTable(name);
  }
  std::vector<std::string> TableNames() const { return local_.TableNames(); }
  size_t NumRows(const std::string& name) const {
    return local_.table(name).NumRows();
  }

  /// Rows per shard (from the placement map, so it is exact even while
  /// workers are down).
  std::vector<size_t> ShardRowCounts(const std::string& name) const;

  // -- Mutations (stream through IVM on replica, owning worker, views) ----

  size_t InsertTuple(const std::string& table, std::vector<Cell> cells,
                     double p);
  size_t DeleteTuple(const std::string& table, const Cell& key);
  void UpdateProbability(VarId var, double p);

  // -- Queries ------------------------------------------------------------

  /// Evaluates `q`: scattered to the workers for the distributable
  /// fragment (all workers up), on the local replica otherwise. Rendered
  /// text and probabilities are bit-identical either way.
  QueryRun Run(const Query& q);

  /// P[alpha = v | present] for an aggregation column of a
  /// non-distributed run.
  Distribution ConditionalAggregateDistribution(const QueryRun& run,
                                                size_t row_index,
                                                const std::string& column);

  // -- Materialized views -------------------------------------------------

  /// Registers a view; the distributable fragment becomes a
  /// worker-maintained chain view (kRegisterChainView to every live
  /// worker), everything else registers on the local replica. Returns the
  /// view's row count.
  size_t RegisterView(const std::string& name, QueryPtr query,
                      std::vector<std::string>* warnings);

  bool HasView(const std::string& name) const;

  /// Drops a view by name (remote chain view or replica view). Replay
  /// target for kDropView records.
  void DropView(const std::string& name);

  /// The view's tuples + cached probabilities (kViewProbs scatter for
  /// remote views; replica caches otherwise).
  QueryRun PrintView(const std::string& name);

  /// One diagnostics line per view, remote chain views first (matching
  /// ShardedDatabase::ViewInfos order and plan naming).
  std::vector<ShardedDatabase::ViewInfo> ViewInfos();

  // -- Worker management --------------------------------------------------

  bool WorkerUp(size_t s) const { return !workers_[s].down(); }
  pid_t WorkerPid(size_t s) const { return workers_[s].pid(); }

  /// Spawns a replacement for worker `s` and resyncs it: a standalone
  /// worker that kept its state gets a tail replay, a fresh blank worker
  /// gets the full rebuild. `stats` (optional) reports which path ran and
  /// how much was shipped.
  bool Respawn(size_t s, std::string* error, ResyncStats* stats = nullptr);

  /// Best-effort kShutdown broadcast to every live worker.
  void Shutdown();

  // -- Observability -------------------------------------------------------

  /// The coordinator's own metrics-registry snapshot plus every live
  /// worker's (kStatsRequest scatter), worker entries prefixed
  /// "shard<N>.". Down workers are skipped; stats reads never mark a
  /// worker down and never touch the durability plane.
  std::vector<MetricSnapshot> AggregatedStats();

  /// Reads worker `s`'s durability position via kReplayTail (a pure probe;
  /// the worker's log and chain are unchanged). False when the worker is
  /// down or the probe fails.
  bool WorkerTail(size_t s, uint64_t* lsn, uint32_t* chain);

  // -- Fault tolerance -----------------------------------------------------

  /// Installs the fault-tolerance plane: sets RpcOptions{rpc_deadline_ms}
  /// on every stub (including future Respawn replacements) and arms the
  /// per-worker heartbeat / respawn-backoff / circuit-breaker state.
  void ConfigureFaultTolerance(const FaultToleranceOptions& options);
  const FaultToleranceOptions& fault_tolerance_options() const {
    return ft_options_;
  }

  /// One heartbeat cycle: pings every live worker (kPing/kPong with a
  /// fresh nonce), walks failing workers suspect -> down, and -- when
  /// auto_respawn is armed -- attempts backoff-paced respawns of down
  /// workers unless their circuit breaker is open. Mutations are never
  /// blind-retried here: respawn recovery goes through ResyncWorker's
  /// (lsn, chain) probe. Appends human-readable transition lines to
  /// `*lines` (may be null). No-op before ConfigureFaultTolerance.
  void HeartbeatTick(std::vector<std::string>* lines = nullptr);

  /// Worker `s`'s health as the heartbeat plane sees it. Before
  /// ConfigureFaultTolerance this degrades to kHealthy/kDown straight from
  /// the stub's transport state.
  WorkerHealth Health(size_t s) const;

  /// Per-shard (end_lsn, end_chain) of the mutation logs -- the position a
  /// fully caught-up worker holds right now. Captured into snapshots so
  /// recovery can RebaseShardLogs and keep tail-resync working across a
  /// checkpoint.
  std::vector<std::pair<uint64_t, uint32_t>> ShardTails() const;

  /// Re-anchors every shard log at the recorded checkpoint tails: the
  /// entries synthesized while rebuilding the replica from the snapshot
  /// are dropped and each log's base becomes the (lsn, chain) position a
  /// live worker that survived the restart actually holds, so the WAL-tail
  /// replay that follows appends with matching continuity and
  /// ReconcileWorkers can prove a (possibly empty) tail instead of forcing
  /// a full resync. No-op when the tail count does not match the topology
  /// (a changed shard count needs the full rebuild anyway).
  void RebaseShardLogs(
      const std::vector<std::pair<uint64_t, uint32_t>>& tails);

 private:
  struct RemoteView {
    std::string name;
    std::string driving;
    QueryPtr query;
  };

  /// The coordinator-side mirror of one worker's applied-mutation history:
  /// the suffix of logged entries still held in memory, anchored at
  /// (base_lsn, base_chain). chain_at(lsn) reproduces the worker's chain
  /// CRC at any retained position, which is the kReplayTail proof.
  struct ShardLog {
    struct Entry {
      MsgKind kind;
      std::string payload;
      uint32_t chain;  ///< Chain value after applying this entry.
    };
    uint64_t base_lsn = 0;
    uint32_t base_chain = 0;
    std::deque<Entry> entries;
    uint64_t bytes = 0;  ///< Retained payload bytes (the trim metric).

    uint64_t end_lsn() const { return base_lsn + entries.size(); }
    uint32_t end_chain() const {
      return entries.empty() ? base_chain : entries.back().chain;
    }
    /// `lsn` must be in [base_lsn, end_lsn].
    uint32_t chain_at(uint64_t lsn) const;
    void Append(MsgKind kind, std::string payload);
    /// Drops oldest entries until <= `max_bytes` are retained (a worker
    /// behind the new base needs a full resync; correctness is unaffected).
    void TrimTo(uint64_t max_bytes);
    void Clear();
  };

  /// True when `q` can scatter: the same predicate as ShardedDatabase::Run.
  bool Distributable(const Query& q, std::string* driving) const;

  /// Appends one kSyncVars entry covering every not-yet-logged variable to
  /// EVERY shard log (shipping it to live workers), so any data-plane
  /// entry that follows can reference them. No-op when all variables are
  /// logged. The eager discipline keeps recovery-replayed logs
  /// byte-identical to live ones (see the file comment).
  void FlushVars();

  /// The single mutating-send path: appends (kind, payload) to shard `s`'s
  /// log, then -- unless replaying or the worker is down -- ships it,
  /// expecting kOk. Transport failure marks the worker down; a worker-side
  /// CheckError marks it diverged. The entry is retained either way (the
  /// log records what a correct worker must have applied). Returns true
  /// when the worker acked.
  bool LogAndShip(size_t s, MsgKind kind, const std::string& payload);

  /// Shared tail of table registration: records placement / key / vars
  /// bookkeeping for the replica table `name` and ships one kLoadPartition
  /// per shard.
  void PartitionAndShip(const std::string& name, size_t key_index,
                        std::vector<VarId> vars);

  /// Shared tail of row insertion: placement bookkeeping plus the routed
  /// kAppendRow to the owning shard.
  void ShipAppendedRow(const std::string& table, size_t key_index,
                       const std::vector<Cell>& cells, VarId var,
                       size_t global_row);

  /// Brings worker `s` (up, freshly handshaken or reconnected) in line
  /// with its shard log: kReplayTail position probe, then either a
  /// kShipWal tail replay or kReset + full rebuild (which rebases the
  /// log). Re-sends the current EvalOptions either way. False + error when
  /// the worker died mid-resync.
  bool ResyncWorker(size_t s, ResyncStats* stats, std::string* error);

  /// Best-effort kSetOptions to worker `s` with the replica's current
  /// EvalOptions.
  void SendOptionsTo(size_t s);

  /// Sends `kind` to every live worker (send-all-then-recv-all scatter)
  /// and decodes each reply into `replies[s]`. Returns false if any worker
  /// was down or died mid-scatter (partial replies are drained so
  /// sequencing survives). A worker-side CheckError is rethrown after the
  /// drain -- the caller's request was bad, the workers are fine.
  template <typename Reply>
  bool Scatter(MsgKind kind, const std::string& payload, MsgKind expect,
               std::vector<Reply>* replies);

  /// Merges per-worker chain rows by global driving-row order and renders
  /// them through a scratch pool (annotations of the distributable
  /// fragment are single variables, so the rendering matches the
  /// replica's).
  QueryRun GatherChainRows(const Schema& schema,
                           std::vector<ChainResultMsg> replies);

  /// The local fallback for a distributable chain: evaluate on the
  /// replica, compute per-row probabilities through the identical isolated
  /// pipeline. Bit-identical values; chains intern nothing, so the
  /// replica's pool is undisturbed.
  QueryRun EvalChainLocally(const Query& q);

  /// Builds worker `s`'s partition of `name` from the replica + placement.
  LoadPartitionMsg PartitionFor(const std::string& name, size_t s) const;

  void DeleteRowAt(const std::string& table, size_t row_index);

  RemoteView* FindRemoteView(const std::string& name);
  std::string DownWarning(const char* what) const;

  /// Bumps the per-shard scatter-request counter "coord.shard<N>.requests"
  /// (counter pointers resolved lazily and cached; no-op with metrics
  /// disabled).
  void CountShardRequest(size_t s);

  /// Marks `s` down after a state-divergence error (a healthy worker
  /// rejected a mutation it should have accepted -- its replica state can
  /// no longer be trusted).
  void MarkDiverged(size_t s, const std::string& why);

  /// Heartbeat-plane bookkeeping for one worker (armed by
  /// ConfigureFaultTolerance).
  struct WorkerHealthState {
    int misses = 0;  ///< Consecutive missed beats; 0 while healthy.
    bool circuit_open = false;  ///< Cached breaker verdict (for Health()).
    uint64_t next_respawn_at_ms = 0;  ///< Backoff gate for the next attempt.
    ExponentialBackoff respawn_backoff;
    std::unique_ptr<CircuitBreaker> breaker;
  };

  SemiringKind semiring_;
  FnvShardRouter router_;
  Database local_;
  std::vector<RemoteShard> workers_;
  WorkerSpawner spawner_;
  std::vector<ShardLog> logs_;  ///< One applied-mutation log per shard.
  size_t logged_vars_ = 0;      ///< Variables covered by kSyncVars entries.
  bool replaying_ = false;      ///< Recovery replay: log, don't send.
  /// Per table: global row -> (shard, row within the shard's partition).
  std::map<std::string, std::vector<std::pair<uint32_t, uint32_t>>>
      placements_;
  std::map<std::string, size_t> key_columns_;
  /// Per table: the annotation VarId of every global row (respawn resync).
  std::map<std::string, std::vector<VarId>> table_vars_;
  std::vector<RemoteView> remote_views_;
  /// Lazily resolved "coord.shard<N>.requests" counters, one per shard.
  std::vector<Counter*> shard_request_counters_;
  FaultToleranceOptions ft_options_;
  /// Empty until ConfigureFaultTolerance; one entry per worker afterwards.
  std::vector<WorkerHealthState> health_;
  uint64_t next_ping_nonce_ = 1;
};

}  // namespace pvcdb

#endif  // PVCDB_ENGINE_COORDINATOR_H_
