#include "src/engine/view.h"

#include <algorithm>
#include <utility>

#include "src/util/check.h"
#include "src/util/hash.h"
#include "src/util/metrics.h"

namespace pvcdb {

namespace {

// Hash of a subset of cells (join keys, projection groups).
struct CellsKey {
  std::vector<Cell> cells;

  bool operator==(const CellsKey& other) const {
    return cells == other.cells;
  }
};

struct CellsKeyHash {
  size_t operator()(const CellsKey& key) const {
    size_t seed = 0;
    for (const Cell& c : key.cells) seed = HashCombine(seed, c.Hash());
    return seed;
  }
};

// Collects the Scan targets of a query.
void CollectBaseTables(const Query& q, std::vector<std::string>* out) {
  if (q.op() == QueryOp::kScan) out->push_back(q.table_name());
  for (const QueryPtr& child : q.children()) CollectBaseTables(*child, out);
}

}  // namespace

/// Persistent hash side of a join view: key cells -> row indices of the
/// side's base table, ascending (buckets are appended in row order; deletes
/// preserve the order).
struct MaterializedView::SideIndex {
  std::vector<size_t> key_columns;
  std::unordered_map<CellsKey, std::vector<size_t>, CellsKeyHash> buckets;

  CellsKey KeyOf(const std::vector<Cell>& cells) const {
    CellsKey key;
    key.cells.reserve(key_columns.size());
    for (size_t c : key_columns) key.cells.push_back(cells[c]);
    return key;
  }

  void Add(const std::vector<Cell>& cells, size_t row) {
    buckets[KeyOf(cells)].push_back(row);
  }

  /// Matching rows for `key` (null when unseen). The caller builds `key`
  /// with the *probing* side's KeyOf -- the two sides' key columns sit at
  /// different schema positions in general.
  const std::vector<size_t>* Probe(const CellsKey& key) const {
    auto it = buckets.find(key);
    return it == buckets.end() ? nullptr : &it->second;
  }

  /// Removes `row` and shifts every index above it down by one.
  void Erase(size_t row) {
    for (auto it = buckets.begin(); it != buckets.end();) {
      std::vector<size_t>& rows = it->second;
      rows.erase(std::remove(rows.begin(), rows.end(), row), rows.end());
      for (size_t& r : rows) {
        if (r > row) --r;
      }
      it = rows.empty() ? buckets.erase(it) : std::next(it);
    }
  }
};

MaterializedView::~MaterializedView() = default;

/// Key cells -> position in groups_ of a project-chain view.
struct MaterializedView::GroupIndex {
  std::unordered_map<CellsKey, size_t, CellsKeyHash> map;
};

void MaterializedView::ReindexGroups() {
  group_index_ = std::make_unique<GroupIndex>();
  for (size_t g = 0; g < groups_.size(); ++g) {
    group_index_->map.emplace(CellsKey{groups_[g].key}, g);
  }
}

const char* MaterializedView::PlanName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kChain:
      return "chain";
    case PlanKind::kProjectChain:
      return "project-chain";
    case PlanKind::kJoin:
      return "join";
    case PlanKind::kRecompute:
      return "recompute";
  }
  return "?";
}

MaterializedView::MaterializedView(std::string name, QueryPtr query,
                                   const ViewContext& ctx)
    : name_(std::move(name)), query_(std::move(query)) {
  PVC_CHECK(query_ != nullptr);
  CollectBaseTables(*query_, &base_tables_);
  Rebuild(ctx);  // Analyzes the plan, then evaluates.
}

bool MaterializedView::References(const std::string& table) const {
  return std::find(base_tables_.begin(), base_tables_.end(), table) !=
         base_tables_.end();
}

void MaterializedView::AnalyzePlan(const ViewContext& ctx) {
  if (std::optional<std::string> driving = ShardDrivingTable(*query_)) {
    plan_ = PlanKind::kChain;
    driving_ = *driving;
    return;
  }
  if (query_->op() == QueryOp::kProject) {
    if (std::optional<std::string> driving =
            ShardDrivingTable(*query_->child(0))) {
      plan_ = PlanKind::kProjectChain;
      driving_ = *driving;
      return;
    }
  }
  if (query_->op() == QueryOp::kSelect &&
      query_->child(0)->op() == QueryOp::kProduct &&
      query_->child(0)->child(0)->op() == QueryOp::kScan &&
      query_->child(0)->child(1)->op() == QueryOp::kScan) {
    left_name_ = query_->child(0)->child(0)->table_name();
    right_name_ = query_->child(0)->child(1)->table_name();
    join_plan_ = SplitEquiJoinAtoms(query_->predicate(),
                                    ctx.resolve(left_name_).schema(),
                                    ctx.resolve(right_name_).schema());
    if (!join_plan_.keys.empty()) {
      plan_ = PlanKind::kJoin;
      return;
    }
  }
  plan_ = PlanKind::kRecompute;
}

std::optional<Row> EvalChainOnSingleRow(ExprPool* pool, const Query& q,
                                        const std::string& driving,
                                        const Schema& schema, const Row& row,
                                        const EvalOptions& options) {
  PvcTable one{schema};
  one.AddRow(row.cells, row.annotation);
  QueryEvaluator evaluator(
      pool,
      [&](const std::string& name) -> const PvcTable& {
        PVC_CHECK_MSG(name == driving,
                      "chain plan scans only '" << driving << "'");
        return one;
      },
      EvalMode::kProbabilistic, options);
  PvcTable out = evaluator.Eval(q);
  if (out.NumRows() == 0) return std::nullopt;
  PVC_CHECK_MSG(out.NumRows() == 1, "chain produced more than one row");
  return out.row(0);
}

std::optional<Row> MaterializedView::EvalChainOnRow(
    const Query& q, const Row& row, const ViewContext& ctx) const {
  // The chain maps each input row to at most one output row; evaluating it
  // on a one-row table runs the delta row through exactly the per-row
  // pipeline a full evaluation applies.
  return EvalChainOnSingleRow(ctx.pool, q, driving_,
                              ctx.resolve(driving_).schema(), row,
                              ctx.eval_options);
}

std::optional<Row> MaterializedView::EmitJoinRow(
    const Row& left, const Row& right, const ViewContext& ctx) const {
  Row candidate;
  candidate.cells = left.cells;
  candidate.cells.insert(candidate.cells.end(), right.cells.begin(),
                         right.cells.end());
  candidate.annotation = ctx.pool->MulS(left.annotation, right.annotation);
  for (const Atom& atom : join_plan_.residual) {
    if (!ApplyPredicateAtom(ctx.pool, join_schema_, atom, &candidate)) {
      return std::nullopt;
    }
  }
  ExprId zero = ctx.pool->ConstS(ctx.pool->semiring().Zero());
  if (candidate.annotation == zero) return std::nullopt;
  return candidate;
}

// The group's annotation: the sum of its member annotations in base-row
// order (AddS canonicalizes, matching a full evaluation's EvalProject).
static ExprId ProjectGroupAnnotation(
    const std::vector<std::pair<size_t, ExprId>>& terms, ExprPool* pool) {
  std::vector<ExprId> exprs;
  exprs.reserve(terms.size());
  for (const auto& [row, term] : terms) exprs.push_back(term);
  return pool->AddS(std::move(exprs));
}

void MaterializedView::EmitProjected(const ViewContext& ctx) {
  // Output order is the first-occurrence order of group keys in the chain
  // output, i.e. ascending minimal member row. groups_ is kept in exactly
  // that order, so output row i is groups_[i] -- the invariant the
  // touched-group delta path in ApplyProjectChain relies on.
  std::sort(groups_.begin(), groups_.end(),
            [](const ProjectGroup& a, const ProjectGroup& b) {
              return a.terms.front().first < b.terms.front().first;
            });
  PvcTable out{result_.schema()};
  for (const ProjectGroup& g : groups_) {
    out.AddRow(g.key, ProjectGroupAnnotation(g.terms, ctx.pool));
  }
  result_ = std::move(out);
}

void MaterializedView::Rebuild(const ViewContext& ctx) {
  PVCDB_COUNTER_ADD("views.rebuilds", 1);
  // Re-analyze: a referenced table may have been replaced with a
  // different schema, which can change join key indices or the plan kind.
  AnalyzePlan(ctx);
  chain_prov_.clear();
  groups_.clear();
  group_index_.reset();
  join_prov_.clear();
  left_index_.reset();
  right_index_.reset();

  switch (plan_) {
    case PlanKind::kChain: {
      const PvcTable& base = ctx.resolve(driving_);
      // The output schema comes from evaluating the chain on an empty
      // input; one per-row pass then builds result and provenance together
      // (the per-row pipeline is the full evaluation's, row by row).
      PvcTable empty{base.schema()};
      QueryEvaluator evaluator(
          ctx.pool,
          [&](const std::string&) -> const PvcTable& { return empty; },
          EvalMode::kProbabilistic, ctx.eval_options);
      result_ = evaluator.Eval(*query_);
      for (size_t i = 0; i < base.NumRows(); ++i) {
        std::optional<Row> out = EvalChainOnRow(*query_, base.row(i), ctx);
        if (!out.has_value()) continue;
        result_.AddRow(std::move(*out));
        chain_prov_.push_back(i);
      }
      break;
    }
    case PlanKind::kProjectChain: {
      const PvcTable& base = ctx.resolve(driving_);
      const Query& chain = *query_->child(0);
      // Resolve the projected columns against the chain output's schema,
      // obtained from an empty-input evaluation (renames only append
      // columns; the rows come from the per-row pass below).
      PvcTable empty{base.schema()};
      QueryEvaluator evaluator(
          ctx.pool,
          [&](const std::string&) -> const PvcTable& { return empty; },
          EvalMode::kProbabilistic, ctx.eval_options);
      PvcTable chain_out = evaluator.Eval(chain);
      const Schema& chain_schema = chain_out.schema();
      std::vector<Column> columns;
      project_indices_.clear();
      for (const std::string& name : query_->columns()) {
        size_t idx = chain_schema.IndexOf(name);
        PVC_CHECK_MSG(chain_schema.column(idx).type != CellType::kAggExpr,
                      "Definition 5: projection on aggregation attribute '"
                          << name << "'");
        columns.push_back(chain_schema.column(idx));
        project_indices_.push_back(idx);
      }
      result_ = PvcTable{Schema(std::move(columns))};

      group_index_ = std::make_unique<GroupIndex>();
      for (size_t i = 0; i < base.NumRows(); ++i) {
        std::optional<Row> out = EvalChainOnRow(chain, base.row(i), ctx);
        if (!out.has_value()) continue;
        CellsKey key;
        key.cells.reserve(project_indices_.size());
        for (size_t idx : project_indices_) {
          key.cells.push_back(out->cells[idx]);
        }
        auto [it, inserted] = group_index_->map.emplace(key, groups_.size());
        if (inserted) {
          ProjectGroup group;
          group.key = std::move(key.cells);
          groups_.push_back(std::move(group));
        }
        groups_[it->second].terms.emplace_back(i, out->annotation);
      }
      EmitProjected(ctx);  // Groups are already in first-occurrence order.
      break;
    }
    case PlanKind::kJoin: {
      const PvcTable& left = ctx.resolve(left_name_);
      const PvcTable& right = ctx.resolve(right_name_);
      std::vector<Column> columns = left.schema().columns();
      for (const Column& c : right.schema().columns()) {
        PVC_CHECK_MSG(!left.schema().Find(c.name).has_value(),
                      "product requires disjoint column names; '"
                          << c.name << "' occurs on both sides (use Rename)");
        columns.push_back(c);
      }
      join_schema_ = Schema(std::move(columns));
      result_ = PvcTable{join_schema_};

      left_index_ = std::make_unique<SideIndex>();
      right_index_ = std::make_unique<SideIndex>();
      for (const EquiJoinPlan::Key& k : join_plan_.keys) {
        left_index_->key_columns.push_back(k.left_index);
        right_index_->key_columns.push_back(k.right_index);
      }
      for (size_t j = 0; j < right.NumRows(); ++j) {
        right_index_->Add(right.row(j).cells, j);
      }
      for (size_t i = 0; i < left.NumRows(); ++i) {
        left_index_->Add(left.row(i).cells, i);
        const std::vector<size_t>* matches =
            right_index_->Probe(left_index_->KeyOf(left.row(i).cells));
        if (matches == nullptr) continue;
        for (size_t j : *matches) {
          std::optional<Row> row =
              EmitJoinRow(left.row(i), right.row(j), ctx);
          if (!row.has_value()) continue;
          result_.AddRow(std::move(*row));
          join_prov_.emplace_back(static_cast<uint32_t>(i),
                                  static_cast<uint32_t>(j));
        }
      }
      break;
    }
    case PlanKind::kRecompute: {
      QueryEvaluator evaluator(ctx.pool, ctx.resolve,
                               EvalMode::kProbabilistic, ctx.eval_options);
      result_ = evaluator.Eval(*query_);
      break;
    }
  }
  stale_ = false;
}

const PvcTable& MaterializedView::Table(const ViewContext& ctx) {
  if (stale_) Rebuild(ctx);
  return result_;
}

std::vector<double> MaterializedView::Probabilities(
    const VariableTable& variables, const CompileOptions& options,
    const ViewContext& ctx) {
  const PvcTable& table = Table(ctx);
  return step_two_.Probabilities(*ctx.pool, variables, table, options,
                                 ctx.eval_options);
}

void MaterializedView::Apply(const TableDelta& delta, const ViewContext& ctx) {
  if (!References(delta.table)) return;
  if (stale_) return;  // Already pending a recompute.
  PVCDB_SPAN(ivm_span, "ivm");
  switch (plan_) {
    case PlanKind::kChain:
      PVCDB_COUNTER_ADD("views.incremental_applies", 1);
      ApplyChain(delta, ctx);
      return;
    case PlanKind::kProjectChain:
      PVCDB_COUNTER_ADD("views.incremental_applies", 1);
      ApplyProjectChain(delta, ctx);
      return;
    case PlanKind::kJoin:
      PVCDB_COUNTER_ADD("views.incremental_applies", 1);
      ApplyJoin(delta, ctx);
      return;
    case PlanKind::kRecompute:
      PVCDB_COUNTER_ADD("views.recompute_fallbacks", 1);
      stale_ = true;
      return;
  }
}

void MaterializedView::ApplyChain(const TableDelta& delta,
                                  const ViewContext& ctx) {
  if (delta.kind == DeltaKind::kInsert) {
    Row row;
    row.cells = delta.cells;
    row.annotation = delta.annotation;
    std::optional<Row> out = EvalChainOnRow(*query_, row, ctx);
    if (out.has_value()) {
      result_.AddRow(std::move(*out));
      chain_prov_.push_back(delta.row_index);
    }
    return;
  }
  // Delete: drop the derived row (if the base row survived the chain) and
  // shift the provenance of later rows.
  auto it = std::lower_bound(chain_prov_.begin(), chain_prov_.end(),
                             delta.row_index);
  if (it != chain_prov_.end() && *it == delta.row_index) {
    result_.DeleteRow(static_cast<size_t>(it - chain_prov_.begin()));
    it = chain_prov_.erase(it);
  }
  for (; it != chain_prov_.end(); ++it) --*it;
}

void MaterializedView::ApplyProjectChain(const TableDelta& delta,
                                         const ViewContext& ctx) {
  // Each base row contributes at most one member term to at most one
  // group (the chain maps rows 1:1), so a delta touches one group: its
  // annotation sum is re-formed in place, and only an appearing /
  // vanishing / min-changing group moves an output row.
  const Query& chain = *query_->child(0);
  if (delta.kind == DeltaKind::kInsert) {
    Row row;
    row.cells = delta.cells;
    row.annotation = delta.annotation;
    std::optional<Row> out = EvalChainOnRow(chain, row, ctx);
    if (!out.has_value()) return;
    CellsKey key;
    key.cells.reserve(project_indices_.size());
    for (size_t idx : project_indices_) key.cells.push_back(out->cells[idx]);
    auto it = group_index_->map.find(key);
    if (it != group_index_->map.end()) {
      // Existing group: the new member has the maximal row, so the
      // group's minimal member -- and hence its output position -- is
      // unchanged.
      size_t g = it->second;
      groups_[g].terms.emplace_back(delta.row_index, out->annotation);
      result_.SetAnnotation(
          g, ProjectGroupAnnotation(groups_[g].terms, ctx.pool));
      return;
    }
    // New group: its minimal member row is the maximal base row, so it
    // appends at the end of the first-occurrence order.
    ProjectGroup group;
    group.key = key.cells;
    group.terms.emplace_back(delta.row_index, out->annotation);
    result_.AddRow(std::move(key.cells),
                   ProjectGroupAnnotation(group.terms, ctx.pool));
    group_index_->map.emplace(CellsKey{group.key}, groups_.size());
    groups_.push_back(std::move(group));
    return;
  }

  // Delete: find the (single) group holding the removed row's term.
  for (size_t g = 0; g < groups_.size(); ++g) {
    auto& terms = groups_[g].terms;
    auto it = std::lower_bound(
        terms.begin(), terms.end(), delta.row_index,
        [](const std::pair<size_t, ExprId>& t, size_t row) {
          return t.first < row;
        });
    if (it == terms.end() || it->first != delta.row_index) continue;
    bool was_min = it == terms.begin();
    terms.erase(it);
    if (terms.empty()) {
      groups_.erase(groups_.begin() + g);
      result_.DeleteRow(g);
      ReindexGroups();
    } else if (was_min && g + 1 < groups_.size() &&
               groups_[g + 1].terms.front().first < terms.front().first) {
      // The group's minimal member grew past a later group's: re-insert
      // at its new position in the first-occurrence order.
      ProjectGroup moved = std::move(groups_[g]);
      groups_.erase(groups_.begin() + g);
      result_.DeleteRow(g);
      size_t at = g;
      while (at < groups_.size() &&
             groups_[at].terms.front().first < moved.terms.front().first) {
        ++at;
      }
      Row out_row;
      out_row.cells = moved.key;
      out_row.annotation = ProjectGroupAnnotation(moved.terms, ctx.pool);
      result_.InsertRowAt(at, std::move(out_row));
      groups_.insert(groups_.begin() + at, std::move(moved));
      ReindexGroups();
    } else {
      result_.SetAnnotation(
          g, ProjectGroupAnnotation(terms, ctx.pool));
    }
    break;
  }
  // Later base rows shifted down by one (relative member order -- and so
  // every group's position -- is unchanged).
  for (ProjectGroup& group : groups_) {
    for (auto& [row, term] : group.terms) {
      if (row > delta.row_index) --row;
    }
  }
}

void MaterializedView::ApplyJoin(const TableDelta& delta,
                                 const ViewContext& ctx) {
  const PvcTable& left = ctx.resolve(left_name_);
  const PvcTable& right = ctx.resolve(right_name_);
  // The two scans are distinct tables (Product requires disjoint columns).
  bool is_left = delta.table == left_name_;
  if (delta.kind == DeltaKind::kInsert) {
    Row row;
    row.cells = delta.cells;
    row.annotation = delta.annotation;
    if (is_left) {
      // New probe row: matches append at the end (its left index is the
      // maximum), in right-row order -- exactly where a recompute emits
      // them.
      size_t li = delta.row_index;
      left_index_->Add(row.cells, li);
      const std::vector<size_t>* matches =
          right_index_->Probe(left_index_->KeyOf(row.cells));
      if (matches == nullptr) return;
      for (size_t j : *matches) {
        std::optional<Row> out = EmitJoinRow(row, right.row(j), ctx);
        if (!out.has_value()) continue;
        result_.AddRow(std::move(*out));
        join_prov_.emplace_back(static_cast<uint32_t>(li),
                                static_cast<uint32_t>(j));
      }
    } else {
      // New build row: it has the maximum right index, so within each
      // matching left row's output block it comes last -- splice after the
      // block, before the next left row's rows.
      size_t ri = delta.row_index;
      right_index_->Add(row.cells, ri);
      const std::vector<size_t>* matches =
          left_index_->Probe(right_index_->KeyOf(row.cells));
      if (matches == nullptr) return;
      for (size_t li : *matches) {
        std::optional<Row> out = EmitJoinRow(left.row(li), row, ctx);
        if (!out.has_value()) continue;
        auto pos = std::lower_bound(
            join_prov_.begin(), join_prov_.end(),
            std::make_pair(static_cast<uint32_t>(li + 1), uint32_t{0}));
        size_t at = static_cast<size_t>(pos - join_prov_.begin());
        result_.InsertRowAt(at, std::move(*out));
        join_prov_.insert(pos, {static_cast<uint32_t>(li),
                                static_cast<uint32_t>(ri)});
      }
    }
    return;
  }
  // Delete: drop every output row derived from the removed base row and
  // shift the indices above it, in the provenance and the hash index alike.
  uint32_t removed = static_cast<uint32_t>(delta.row_index);
  for (size_t i = join_prov_.size(); i-- > 0;) {
    uint32_t& side = is_left ? join_prov_[i].first : join_prov_[i].second;
    if (side == removed) {
      result_.DeleteRow(i);
      join_prov_.erase(join_prov_.begin() + i);
    } else if (side > removed) {
      --side;
    }
  }
  (is_left ? left_index_ : right_index_)->Erase(delta.row_index);
}

void MaterializedView::OnVariableUpdate(VarId var,
                                        const VariableTable& variables,
                                        const Semiring& semiring,
                                        bool same_support) {
  step_two_.OnVariableUpdate(var, variables, semiring, same_support);
}

// -- ViewRegistry -----------------------------------------------------------

const PvcTable& ViewRegistry::Register(const std::string& name,
                                       QueryPtr query,
                                       const ViewContext& ctx) {
  // Construct (and evaluate) the replacement first: a query that fails to
  // evaluate must leave any existing view of the same name untouched.
  auto view = std::make_unique<MaterializedView>(name, std::move(query), ctx);
  Drop(name);
  views_.push_back(std::move(view));
  return views_.back()->Table(ctx);
}

bool ViewRegistry::Has(const std::string& name) const {
  for (const auto& v : views_) {
    if (v->name() == name) return true;
  }
  return false;
}

void ViewRegistry::Drop(const std::string& name) {
  for (auto it = views_.begin(); it != views_.end(); ++it) {
    if ((*it)->name() == name) {
      views_.erase(it);
      return;
    }
  }
}

std::vector<std::string> ViewRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(views_.size());
  for (const auto& v : views_) names.push_back(v->name());
  return names;
}

MaterializedView& ViewRegistry::view(const std::string& name) {
  for (auto& v : views_) {
    if (v->name() == name) return *v;
  }
  PVC_FAIL("no view named '" << name << "'");
}

const MaterializedView& ViewRegistry::view(const std::string& name) const {
  for (const auto& v : views_) {
    if (v->name() == name) return *v;
  }
  PVC_FAIL("no view named '" << name << "'");
}

const PvcTable& ViewRegistry::Table(const std::string& name,
                                    const ViewContext& ctx) {
  return view(name).Table(ctx);
}

std::vector<double> ViewRegistry::Probabilities(const std::string& name,
                                                const VariableTable& variables,
                                                const CompileOptions& options,
                                                const ViewContext& ctx) {
  return view(name).Probabilities(variables, options, ctx);
}

void ViewRegistry::Apply(const TableDelta& delta, const ViewContext& ctx) {
  for (auto& v : views_) v->Apply(delta, ctx);
}

void ViewRegistry::OnVariableUpdate(VarId var, const VariableTable& variables,
                                    const Semiring& semiring,
                                    bool same_support) {
  for (auto& v : views_) {
    v->OnVariableUpdate(var, variables, semiring, same_support);
  }
}

void ViewRegistry::OnTableReplaced(const std::string& table) {
  for (auto& v : views_) {
    if (v->References(table)) v->Invalidate();
  }
}

}  // namespace pvcdb
