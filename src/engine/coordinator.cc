#include "src/engine/coordinator.h"

#include <algorithm>

#include "src/engine/delta.h"
#include "src/engine/shard_worker.h"
#include "src/util/check.h"
#include "src/util/metrics.h"
#include "src/util/timer.h"

namespace pvcdb {
namespace {

/// Retained bytes per shard log. A worker whose position predates the
/// trimmed base simply takes the full-resync path; correctness never
/// depends on retention.
constexpr uint64_t kMaxShardLogBytes = 64ull << 20;

/// Target kShipWal batch size: tails stream in ~1 MiB request frames so a
/// long tail neither builds one giant frame nor pays a round-trip per
/// entry.
constexpr uint64_t kShipBatchBytes = 1ull << 20;

}  // namespace

// -- ShardLog ---------------------------------------------------------------

uint32_t Coordinator::ShardLog::chain_at(uint64_t lsn) const {
  PVC_CHECK_MSG(lsn >= base_lsn && lsn <= end_lsn(),
                "lsn " << lsn << " outside retained log ["
                       << base_lsn << ", " << end_lsn() << "]");
  if (lsn == base_lsn) return base_chain;
  return entries[lsn - base_lsn - 1].chain;
}

void Coordinator::ShardLog::Append(MsgKind kind, std::string payload) {
  uint32_t next = ShardWorker::NextChain(end_chain(), kind, payload);
  bytes += payload.size();
  entries.push_back(Entry{kind, std::move(payload), next});
}

void Coordinator::ShardLog::TrimTo(uint64_t max_bytes) {
  while (bytes > max_bytes && !entries.empty()) {
    Entry& front = entries.front();
    bytes -= front.payload.size();
    base_chain = front.chain;
    ++base_lsn;
    entries.pop_front();
  }
}

void Coordinator::ShardLog::Clear() {
  base_lsn = 0;
  base_chain = 0;
  entries.clear();
  bytes = 0;
}

// -- Coordinator ------------------------------------------------------------

Coordinator::Coordinator(SemiringKind semiring,
                         std::vector<RemoteShard> workers,
                         WorkerSpawner spawner)
    : semiring_(semiring),
      local_(semiring),
      workers_(std::move(workers)),
      spawner_(std::move(spawner)),
      logs_(workers_.size()) {
  PVC_CHECK_MSG(!workers_.empty(), "a coordinator needs >= 1 worker");
  for (size_t s = 0; s < workers_.size(); ++s) {
    HelloMsg hello;
    hello.semiring = semiring_;
    hello.shard_index = static_cast<uint32_t>(s);
    hello.num_shards = static_cast<uint32_t>(workers_.size());
    workers_[s].Handshake(hello);  // Failure marks the worker down.
  }
}

std::string Coordinator::DownWarning(const char* what) const {
  PVCDB_COUNTER_ADD("coord.degraded_fallbacks", 1);
  std::string warning = "warning:";
  for (size_t s = 0; s < workers_.size(); ++s) {
    if (workers_[s].down()) warning += " worker " + std::to_string(s);
  }
  warning += " down; ";
  warning += what;
  return warning;
}

void Coordinator::MarkDiverged(size_t s, const std::string& why) {
  // A healthy worker rejecting a replicated mutation means its state no
  // longer mirrors the replica's; keep the connection out of every future
  // scatter until a respawn rebuilds it. (The engine invariant message is
  // intentionally dropped: the replica already applied the mutation, and
  // correctness is preserved by the fallback path.)
  (void)why;
  workers_[s].MarkDown();
}

void Coordinator::FlushVars() {
  const VariableTable& variables = local_.variables();
  if (logged_vars_ >= variables.size()) return;
  SyncVarsMsg msg;
  msg.first_id = static_cast<VarId>(logged_vars_);
  msg.entries.reserve(variables.size() - logged_vars_);
  for (size_t v = logged_vars_; v < variables.size(); ++v) {
    VarSyncEntry entry;
    entry.name = variables.NameOf(static_cast<VarId>(v));
    entry.distribution = variables.DistributionOf(static_cast<VarId>(v));
    msg.entries.push_back(std::move(entry));
  }
  logged_vars_ = variables.size();
  std::string payload = msg.Encode();
  for (size_t s = 0; s < workers_.size(); ++s) {
    LogAndShip(s, MsgKind::kSyncVars, payload);
  }
}

bool Coordinator::LogAndShip(size_t s, MsgKind kind,
                             const std::string& payload) {
  ShardLog& log = logs_[s];
  log.Append(kind, payload);
  log.TrimTo(kMaxShardLogBytes);
  if (replaying_ || workers_[s].down()) return false;
  try {
    workers_[s].Call(kind, payload, MsgKind::kOk);
    return true;
  } catch (const WorkerDown&) {
    return false;
  } catch (const CheckError& e) {
    MarkDiverged(s, e.what());
    return false;
  }
}

template <typename Reply>
bool Coordinator::Scatter(MsgKind kind, const std::string& payload,
                          MsgKind expect, std::vector<Reply>* replies) {
  WallTimer scatter_timer;
  PVCDB_COUNTER_ADD("coord.scatters", 1);
  size_t n = workers_.size();
  replies->assign(n, Reply{});
  std::vector<bool> sent(n, false);
  bool complete = true;
  for (size_t s = 0; s < n; ++s) {
    if (workers_[s].down()) {
      complete = false;
      continue;
    }
    try {
      workers_[s].SendRequest(kind, payload);
      sent[s] = true;
      CountShardRequest(s);
    } catch (const WorkerDown&) {
      complete = false;
    }
  }
  // Drain every pending reply even after a failure: the request/reply
  // sequencing of the surviving connections must stay aligned.
  std::string request_error;
  for (size_t s = 0; s < n; ++s) {
    if (!sent[s]) continue;
    try {
      std::string reply = workers_[s].RecvReply(expect);
      if (!Reply::Decode(reply, &(*replies)[s])) {
        workers_[s].MarkDown();
        complete = false;
      }
    } catch (const WorkerDown&) {
      complete = false;
    } catch (const CheckError& e) {
      // The worker is healthy; the request itself was bad. Surface the
      // first such error to the caller once the scatter is drained.
      if (request_error.empty()) request_error = e.what();
    }
  }
  if (!request_error.empty()) throw CheckError(request_error);
  PVCDB_HIST_OBSERVE("coord.scatter.ms", scatter_timer.ElapsedMillis());
  return complete;
}

void Coordinator::CountShardRequest(size_t s) {
  if (!MetricsEnabled()) return;
  if (shard_request_counters_.empty()) {
    shard_request_counters_.resize(workers_.size(), nullptr);
  }
  if (shard_request_counters_[s] == nullptr) {
    shard_request_counters_[s] = MetricsRegistry::Global().GetCounter(
        "coord.shard" + std::to_string(s) + ".requests");
  }
  shard_request_counters_[s]->Increment(1);
}

// -- Catalog ----------------------------------------------------------------

void Coordinator::PartitionAndShip(const std::string& name, size_t key_index,
                                   std::vector<VarId> vars) {
  // The kSyncVars entry for the table's variables must precede its
  // kLoadPartition entries in every shard log.
  FlushVars();

  const PvcTable& logical = local_.table(name);
  std::vector<LoadPartitionMsg> parts(workers_.size());
  std::string key_name = logical.schema().column(key_index).name;
  for (size_t s = 0; s < workers_.size(); ++s) {
    parts[s].table = name;
    parts[s].key_column = key_name;
    parts[s].schema = logical.schema();
  }
  std::vector<std::pair<uint32_t, uint32_t>> placement;
  placement.reserve(logical.NumRows());
  for (size_t i = 0; i < logical.NumRows(); ++i) {
    size_t s = router_.Route(logical.row(i).cells[key_index],
                             workers_.size());
    placement.emplace_back(static_cast<uint32_t>(s),
                           static_cast<uint32_t>(parts[s].rows.size()));
    parts[s].rows.push_back(logical.row(i).cells);
    parts[s].vars.push_back(vars[i]);
    parts[s].global_rows.push_back(i);
  }
  placements_[name] = std::move(placement);
  key_columns_[name] = key_index;
  table_vars_[name] = std::move(vars);

  for (size_t s = 0; s < workers_.size(); ++s) {
    // The worker re-seeds its views of a replaced table itself.
    LogAndShip(s, MsgKind::kLoadPartition, parts[s].Encode());
  }
}

void Coordinator::AddTupleIndependentTable(
    const std::string& name, Schema schema,
    std::vector<std::vector<Cell>> rows, std::vector<double> probabilities) {
  PVC_CHECK_MSG(schema.NumColumns() > 0, "cannot shard a zero-column table");
  const size_t key_index = 0;  // CSV loads route by the primary key.
  VarId var_base = static_cast<VarId>(local_.variables().size());
  size_t num_rows = rows.size();
  std::vector<VarId> vars;
  vars.reserve(num_rows);
  for (size_t i = 0; i < num_rows; ++i) {
    vars.push_back(var_base + static_cast<VarId>(i));
  }
  // The replica performs the exact load an unsharded Database would:
  // Bernoulli variables in global row order, VarIds matching.
  local_.AddTupleIndependentTable(name, std::move(schema), std::move(rows),
                                  std::move(probabilities));
  PartitionAndShip(name, key_index, std::move(vars));
}

void Coordinator::AddVariableAnnotatedTable(
    const std::string& name, Schema schema,
    std::vector<std::vector<Cell>> rows, const std::vector<VarId>& vars,
    const std::string& key_column) {
  size_t key_index = 0;
  if (!key_column.empty()) {
    std::optional<size_t> found = schema.Find(key_column);
    PVC_CHECK_MSG(found.has_value(),
                  "table '" << name << "' has no key column '" << key_column
                            << "'");
    key_index = *found;
  }
  local_.AddVariableAnnotatedTable(name, std::move(schema), std::move(rows),
                                   vars);
  PartitionAndShip(name, key_index, vars);
}

std::vector<size_t> Coordinator::ShardRowCounts(
    const std::string& name) const {
  auto it = placements_.find(name);
  PVC_CHECK_MSG(it != placements_.end(),
                "no sharded table named '" << name << "'");
  std::vector<size_t> counts(workers_.size(), 0);
  for (const auto& [s, r] : it->second) ++counts[s];
  return counts;
}

// -- Mutations --------------------------------------------------------------

void Coordinator::ShipAppendedRow(const std::string& table, size_t key_index,
                                  const std::vector<Cell>& cells, VarId var,
                                  size_t global_row) {
  FlushVars();
  table_vars_[table].push_back(var);

  size_t s = router_.Route(cells[key_index], workers_.size());
  std::vector<std::pair<uint32_t, uint32_t>>& placement = placements_[table];
  uint32_t shard_row = 0;
  for (const auto& [ps, pr] : placement) {
    (void)pr;
    if (ps == s) ++shard_row;
  }
  placement.emplace_back(static_cast<uint32_t>(s), shard_row);

  AppendRowMsg msg;
  msg.table = table;
  msg.cells = cells;
  msg.var = var;
  msg.global_row = global_row;
  LogAndShip(s, MsgKind::kAppendRow, msg.Encode());
}

size_t Coordinator::InsertTuple(const std::string& table,
                                std::vector<Cell> cells, double p) {
  auto key_it = key_columns_.find(table);
  PVC_CHECK_MSG(key_it != key_columns_.end(),
                "no sharded table named '" << table << "'");
  PVC_CHECK_MSG(key_it->second < cells.size(), "row is missing its key cell");

  // The replica replays the unsharded mutation first (fresh Bernoulli
  // variable with the next global id, replica-registered views absorb the
  // delta), then the owning worker gets the routed append.
  VarId x = static_cast<VarId>(local_.variables().size());
  size_t global_row = local_.InsertTuple(table, cells, p);
  ShipAppendedRow(table, key_it->second, cells, x, global_row);
  return global_row;
}

void Coordinator::DeleteRowAt(const std::string& table, size_t row_index) {
  auto it = placements_.find(table);
  PVC_CHECK_MSG(it != placements_.end(),
                "no sharded table named '" << table << "'");
  std::vector<std::pair<uint32_t, uint32_t>>& placement = it->second;
  PVC_CHECK_MSG(row_index < placement.size(),
                "row index " << row_index << " out of range");
  auto [s, shard_row] = placement[row_index];

  local_.DeleteRowAt(table, row_index);
  placement.erase(placement.begin() + static_cast<ptrdiff_t>(row_index));
  for (auto& [ps, pr] : placement) {
    if (ps == s && pr > shard_row) --pr;
  }
  std::vector<VarId>& vars = table_vars_[table];
  vars.erase(vars.begin() + static_cast<ptrdiff_t>(row_index));

  // Broadcast: the owner drops its local row, everyone shifts global ids.
  for (size_t w = 0; w < workers_.size(); ++w) {
    DeleteRowMsg msg;
    msg.table = table;
    msg.has_local_row = (w == s);
    msg.local_row = shard_row;
    msg.global_row = row_index;
    LogAndShip(w, MsgKind::kDeleteRow, msg.Encode());
  }
}

size_t Coordinator::DeleteTuple(const std::string& table, const Cell& key) {
  return DeleteRowsMatchingKey(
      local_.table(table), key,
      [&](size_t index) { DeleteRowAt(table, index); });
}

void Coordinator::UpdateProbability(VarId var, double p) {
  local_.UpdateProbability(var, p);
  // The update entry must land after the kSyncVars entry that introduces
  // the variable (a no-op unless a load is mid-flight).
  FlushVars();
  UpdateVarMsg msg;
  msg.var = var;
  msg.probability = p;
  std::string payload = msg.Encode();
  for (size_t s = 0; s < workers_.size(); ++s) {
    LogAndShip(s, MsgKind::kUpdateVar, payload);
  }
}

// -- Recovery replay --------------------------------------------------------

void Coordinator::ApplyRecoveredOp(const WalOp& op) {
  switch (op.type) {
    case WalOpType::kRegisterVariable: {
      // Mirrors the Database-level ApplyWalOp: creation-order Add plus the
      // pool interning an unsharded load performs.
      VarId id = local_.variables().Add(op.distribution, op.name);
      local_.pool().Var(id);
      return;
    }
    case WalOpType::kCreateTable:
      AddVariableAnnotatedTable(op.name, op.schema, op.rows, op.vars,
                                op.key_column);
      return;
    case WalOpType::kInsertRow: {
      PVC_CHECK_MSG(op.var < local_.variables().size(),
                    "kInsertRow references unregistered variable x"
                        << op.var);
      auto key_it = key_columns_.find(op.name);
      PVC_CHECK_MSG(key_it != key_columns_.end(),
                    "kInsertRow for unknown sharded table '" << op.name
                                                             << "'");
      size_t global_row = local_.AppendRowToTable(
          op.name, op.cells, local_.pool().Var(op.var));
      ShipAppendedRow(op.name, key_it->second, op.cells, op.var, global_row);
      return;
    }
    case WalOpType::kDeleteRow:
      DeleteRowAt(op.name, op.row_index);
      return;
    case WalOpType::kUpdateProbability:
      UpdateProbability(op.var, op.probability);
      return;
    case WalOpType::kRegisterView:
      RegisterView(op.name, op.query, nullptr);
      return;
    case WalOpType::kDropView:
      DropView(op.name);
      return;
    case WalOpType::kReshard:
      // Server-mode topology is deployment configuration, not durable
      // state: the recovered history replays against the current worker
      // set (placements recompute; mismatched workers full-resync).
      return;
  }
  PVC_FAIL("unknown WAL op type");
}

// -- Queries ----------------------------------------------------------------

bool Coordinator::Distributable(const Query& q, std::string* driving) const {
  std::optional<std::string> table = ShardDrivingTable(q);
  if (!table.has_value() || placements_.count(*table) == 0) return false;
  if (local_.table(*table).schema().Find(kShardRowIdColumn).has_value()) {
    return false;
  }
  if (QueryMentionsColumn(q, kShardRowIdColumn)) return false;
  *driving = *table;
  return true;
}

QueryRun Coordinator::GatherChainRows(const Schema& schema,
                                      std::vector<ChainResultMsg> replies) {
  std::vector<ChainRow> merged;
  for (ChainResultMsg& reply : replies) {
    for (ChainRow& row : reply.rows) merged.push_back(std::move(row));
  }
  std::sort(merged.begin(), merged.end(),
            [](const ChainRow& a, const ChainRow& b) {
              return a.global_row < b.global_row;
            });

  QueryRun run;
  run.schema = schema;
  run.distributed = true;
  // Render through a scratch pool, like ShardedDatabase::ResultToString:
  // annotations of the distributable fragment are single variables, so the
  // text matches the replica's rendering exactly.
  ExprPool scratch(semiring_);
  PvcTable gathered{schema};
  run.probabilities.reserve(merged.size());
  for (const ChainRow& row : merged) {
    gathered.AddRow(row.cells, scratch.Var(row.var));
    run.probabilities.push_back(row.probability);
  }
  run.text = gathered.ToString(&scratch);
  return run;
}

QueryRun Coordinator::EvalChainLocally(const Query& q) {
  QueryRun run;
  PvcTable result = local_.Run(q);
  run.schema = result.schema();
  run.text = result.ToString(&local_.pool());
  run.probabilities = local_.TupleProbabilities(result);
  run.local_result = std::move(result);
  return run;
}

QueryRun Coordinator::Run(const Query& q) {
  std::string driving;
  if (Distributable(q, &driving)) {
    EvalChainMsg msg;
    msg.table = driving;
    // Non-owning alias: the message only lives for this call, and Encode
    // just serializes the query.
    msg.query = QueryPtr(&q, [](const Query*) {});
    std::string payload = msg.Encode();
    std::vector<ChainResultMsg> replies;
    if (Scatter<ChainResultMsg>(MsgKind::kEvalChain, payload,
                                MsgKind::kChainResult, &replies)) {
      Schema schema = replies.empty() ? Schema{} : replies[0].schema;
      return GatherChainRows(schema, std::move(replies));
    }
    QueryRun run = EvalChainLocally(q);
    run.warnings.push_back(DownWarning("evaluated on coordinator"));
    return run;
  }
  // Gather shapes (joins, aggregates, projections, unions) always run on
  // the replica -- the same division of labor as the in-process facade.
  return EvalChainLocally(q);
}

Distribution Coordinator::ConditionalAggregateDistribution(
    const QueryRun& run, size_t row_index, const std::string& column) {
  PVC_CHECK_MSG(!run.distributed,
                "aggregation columns only occur on coordinator-evaluated "
                "results (aggregates always gather)");
  return local_.ConditionalAggregateDistribution(run.local_result, row_index,
                                                 column);
}

// -- Materialized views -----------------------------------------------------

Coordinator::RemoteView* Coordinator::FindRemoteView(const std::string& name) {
  for (RemoteView& view : remote_views_) {
    if (view.name == name) return &view;
  }
  return nullptr;
}

size_t Coordinator::RegisterView(const std::string& name, QueryPtr query,
                                 std::vector<std::string>* warnings) {
  std::string driving;
  if (Distributable(*query, &driving)) {
    // Validate the chain on the replica first (bad column names and the
    // like fail here, before any worker state changes; chains intern
    // nothing, so the replica's pool is undisturbed). The row count of the
    // materialization is the local count in every case.
    size_t rows = local_.Run(*query).NumRows();

    FlushVars();
    RegisterChainViewMsg msg;
    msg.name = name;
    msg.table = driving;
    msg.query = query;
    std::string payload = msg.Encode();
    bool complete = true;
    for (size_t s = 0; s < workers_.size(); ++s) {
      if (!LogAndShip(s, MsgKind::kRegisterChainView, payload)) {
        complete = false;
      }
    }
    if (!complete && !replaying_ && warnings != nullptr) {
      warnings->push_back(
          DownWarning("view registered; down workers resync on respawn"));
    }
    if (RemoteView* existing = FindRemoteView(name)) {
      existing->driving = driving;
      existing->query = query;
    } else {
      remote_views_.push_back({name, driving, query});
    }
    // Remote chain views never materialize on the replica, so the replica
    // cannot log them: one coordinator-level kRegisterView record covers
    // the whole branch (its replay re-runs this function).
    if (WalWriter* wal = local_.wal()) {
      WalRecord record;
      record.ops.push_back(WalOp::RegisterView(name, query));
      LogWalRecord(wal, record);
    }
    // A replica view previously under this name retires WITHOUT its own
    // kDropView record: the kRegisterView replay performs the drop again,
    // and a paired record would fail replay (the view is already gone).
    if (local_.HasView(name)) {
      WalWriter* wal = local_.wal();
      local_.set_wal(nullptr);
      local_.DropView(name);
      local_.set_wal(wal);
    }
    return rows;
  }

  size_t rows = local_.RegisterView(name, std::move(query)).NumRows();
  // Retire a same-name remote view only now that the replacement exists.
  for (auto it = remote_views_.begin(); it != remote_views_.end(); ++it) {
    if (it->name == name) {
      remote_views_.erase(it);
      NameMsg msg;
      msg.name = name;
      std::string payload = msg.Encode();
      for (size_t s = 0; s < workers_.size(); ++s) {
        LogAndShip(s, MsgKind::kDropChainView, payload);
      }
      break;
    }
  }
  return rows;
}

bool Coordinator::HasView(const std::string& name) const {
  for (const RemoteView& view : remote_views_) {
    if (view.name == name) return true;
  }
  return local_.HasView(name);
}

void Coordinator::DropView(const std::string& name) {
  for (auto it = remote_views_.begin(); it != remote_views_.end(); ++it) {
    if (it->name == name) {
      remote_views_.erase(it);
      NameMsg msg;
      msg.name = name;
      std::string payload = msg.Encode();
      for (size_t s = 0; s < workers_.size(); ++s) {
        LogAndShip(s, MsgKind::kDropChainView, payload);
      }
      // Remote views live only in coordinator-level records, so their drop
      // must log at this level too.
      if (WalWriter* wal = local_.wal()) {
        WalRecord record;
        record.ops.push_back(WalOp::DropView(name));
        LogWalRecord(wal, record);
      }
      return;
    }
  }
  local_.DropView(name);  // Logs its own kDropView when a WAL is attached.
}

QueryRun Coordinator::PrintView(const std::string& name) {
  if (RemoteView* view = FindRemoteView(name)) {
    NameMsg msg;
    msg.name = name;
    std::string payload = msg.Encode();
    std::vector<ChainResultMsg> replies;
    if (Scatter<ChainResultMsg>(MsgKind::kViewProbs, payload,
                                MsgKind::kChainResult, &replies)) {
      Schema schema = replies.empty() ? Schema{} : replies[0].schema;
      return GatherChainRows(schema, std::move(replies));
    }
    // Fallback: recompute on the replica (no cache, identical values).
    QueryRun run = EvalChainLocally(*view->query);
    run.warnings.push_back(DownWarning("evaluated on coordinator"));
    return run;
  }
  QueryRun run;
  PvcTable result = local_.ViewTable(name);  // Copy: refresh + snapshot.
  run.schema = result.schema();
  run.text = result.ToString(&local_.pool());
  run.probabilities = local_.ViewProbabilities(name);
  run.local_result = std::move(result);
  return run;
}

std::vector<ShardedDatabase::ViewInfo> Coordinator::ViewInfos() {
  std::vector<ShardedDatabase::ViewInfo> infos;
  for (RemoteView& view : remote_views_) {
    ShardedDatabase::ViewInfo info;
    info.name = view.name;
    info.plan = "chain (per shard)";
    NameMsg msg;
    msg.name = view.name;
    std::string payload = msg.Encode();
    std::vector<ViewInfoMsg> replies;
    if (Scatter<ViewInfoMsg>(MsgKind::kViewInfo, payload,
                             MsgKind::kViewInfoResult, &replies)) {
      for (const ViewInfoMsg& reply : replies) {
        info.rows += reply.rows;
        info.cache_entries += reply.cache_entries;
      }
    } else {
      // Degraded: the row count comes from the replica, cache entries
      // from whatever workers answered.
      info.rows = local_.Run(*view.query).NumRows();
      for (const ViewInfoMsg& reply : replies) {
        info.cache_entries += reply.cache_entries;
      }
    }
    infos.push_back(std::move(info));
  }
  for (const std::string& name : local_.ViewNames()) {
    const MaterializedView& view = local_.views().view(name);
    ShardedDatabase::ViewInfo info;
    info.name = name;
    info.plan = MaterializedView::PlanName(view.plan());
    info.rows = local_.ViewTable(name).NumRows();
    info.cache_entries = view.step_two().LiveEntries(local_.ViewTable(name));
    infos.push_back(std::move(info));
  }
  return infos;
}

// -- Snapshot-capture hooks -------------------------------------------------

std::string Coordinator::KeyColumnName(const std::string& name) const {
  return local_.table(name).schema().column(key_columns_.at(name)).name;
}

std::vector<std::pair<std::string, QueryPtr>> Coordinator::ViewCatalog()
    const {
  std::vector<std::pair<std::string, QueryPtr>> catalog;
  for (const RemoteView& view : remote_views_) {
    catalog.emplace_back(view.name, view.query);
  }
  for (const std::string& name : local_.ViewNames()) {
    catalog.emplace_back(name, local_.views().view(name).query());
  }
  return catalog;
}

// -- Evaluation knobs -------------------------------------------------------

void Coordinator::SetEvalOptions(int num_threads, int intra_tree_threads) {
  local_.eval_options().num_threads = num_threads;
  local_.eval_options().intra_tree_threads = intra_tree_threads;
  for (size_t s = 0; s < workers_.size(); ++s) SendOptionsTo(s);
}

void Coordinator::SendOptionsTo(size_t s) {
  if (replaying_ || workers_[s].down()) return;
  EvalOptionsMsg msg;
  // Round-trips negative counts (-1 = all cores) through the u32 field.
  msg.num_threads = static_cast<uint32_t>(local_.eval_options().num_threads);
  msg.intra_tree_threads =
      static_cast<uint32_t>(local_.eval_options().intra_tree_threads);
  try {
    workers_[s].Call(MsgKind::kSetOptions, msg.Encode(), MsgKind::kOk);
  } catch (const WorkerDown&) {
  } catch (const CheckError& e) {
    MarkDiverged(s, e.what());
  }
}

// -- Worker management ------------------------------------------------------

LoadPartitionMsg Coordinator::PartitionFor(const std::string& name,
                                           size_t s) const {
  const PvcTable& logical = local_.table(name);
  const auto& placement = placements_.at(name);
  const std::vector<VarId>& vars = table_vars_.at(name);
  LoadPartitionMsg msg;
  msg.table = name;
  msg.key_column = logical.schema().column(key_columns_.at(name)).name;
  msg.schema = logical.schema();
  for (size_t i = 0; i < placement.size(); ++i) {
    if (placement[i].first != s) continue;
    msg.rows.push_back(logical.row(i).cells);
    msg.vars.push_back(vars[i]);
    msg.global_rows.push_back(i);
  }
  return msg;
}

bool Coordinator::ResyncWorker(size_t s, ResyncStats* stats,
                               std::string* error) {
  *stats = ResyncStats{};
  // Record what this resync shipped on exit, whichever path ran.
  struct ResyncRecorder {
    const ResyncStats* stats;
    ~ResyncRecorder() {
      PVCDB_COUNTER_ADD("coord.resyncs", 1);
      if (stats->full) PVCDB_COUNTER_ADD("coord.resync.full", 1);
      PVCDB_COUNTER_ADD("coord.resync.entries", stats->entries);
      PVCDB_COUNTER_ADD("coord.resync.bytes", stats->bytes);
    }
  } recorder{stats};
  ShardLog& log = logs_[s];

  // Position probe + tail replay. The worker's (lsn, chain) pair must name
  // a retained log position AND reproduce the chain CRC at that position:
  // that proves its applied history is a prefix of this log, so shipping
  // entries [lsn, end) brings it exactly current. lsn 0 (a blank worker)
  // always takes the full path -- the consolidated rebuild is cheaper than
  // a from-zero tail. Any CheckError here (a rejected tail entry) falls
  // through to the full rebuild, which is always correct.
  try {
    ReplayTailMsg probe;
    probe.base_lsn = log.base_lsn;
    std::string reply = workers_[s].Call(MsgKind::kReplayTail, probe.Encode(),
                                         MsgKind::kTailInfo);
    TailInfoMsg info;
    if (TailInfoMsg::Decode(reply, &info) && info.lsn > 0 &&
        info.lsn >= log.base_lsn && info.lsn <= log.end_lsn() &&
        info.chain == log.chain_at(info.lsn)) {
      ShipWalMsg batch;
      batch.first_lsn = info.lsn;
      uint64_t batch_bytes = 0;
      auto flush = [&]() {
        if (batch.entries.empty()) return;
        uint64_t shipped = batch.entries.size();
        workers_[s].Call(MsgKind::kShipWal, batch.Encode(), MsgKind::kOk);
        batch.first_lsn += shipped;
        batch.entries.clear();
        batch_bytes = 0;
      };
      for (uint64_t lsn = info.lsn; lsn < log.end_lsn(); ++lsn) {
        const ShardLog::Entry& entry = log.entries[lsn - log.base_lsn];
        WalEntry wire;
        wire.kind = static_cast<uint8_t>(entry.kind);
        wire.payload = entry.payload;
        batch_bytes += entry.payload.size();
        stats->entries += 1;
        stats->bytes += entry.payload.size();
        batch.entries.push_back(std::move(wire));
        if (batch_bytes >= kShipBatchBytes) flush();
      }
      flush();
      SendOptionsTo(s);
      return true;
    }
  } catch (const WorkerDown& e) {
    *error = e.what();
    return false;
  } catch (const CheckError&) {
    // Fall through to the full rebuild.
  }

  // Full rebuild: reset the worker, then replay the replica's consolidated
  // state. Every entry is appended to the REBASED log as it ships, so the
  // worker's restarted (lsn, chain) stays aligned with the log and future
  // resyncs can tail again.
  try {
    workers_[s].Call(MsgKind::kReset, std::string(), MsgKind::kOk);
    log.Clear();
    stats->full = true;
    auto ship = [&](MsgKind kind, std::string payload) {
      stats->entries += 1;
      stats->bytes += payload.size();
      log.Append(kind, std::move(payload));
      workers_[s].Call(kind, log.entries.back().payload, MsgKind::kOk);
    };
    // Only variables already covered by kSyncVars entries: any newer ones
    // reach every log (including this rebased one) with the next
    // FlushVars, and no retained data entry can reference them yet.
    if (logged_vars_ > 0) {
      const VariableTable& variables = local_.variables();
      SyncVarsMsg msg;
      msg.first_id = 0;
      msg.entries.reserve(logged_vars_);
      for (size_t v = 0; v < logged_vars_; ++v) {
        VarSyncEntry entry;
        entry.name = variables.NameOf(static_cast<VarId>(v));
        entry.distribution = variables.DistributionOf(static_cast<VarId>(v));
        msg.entries.push_back(std::move(entry));
      }
      ship(MsgKind::kSyncVars, msg.Encode());
    }
    // Map order: placement and annotations reproduce the original load.
    for (const auto& [name, placement] : placements_) {
      (void)placement;
      ship(MsgKind::kLoadPartition, PartitionFor(name, s).Encode());
    }
    for (const RemoteView& view : remote_views_) {
      RegisterChainViewMsg msg;
      msg.name = view.name;
      msg.table = view.driving;
      msg.query = view.query;
      ship(MsgKind::kRegisterChainView, msg.Encode());
    }
    SendOptionsTo(s);
    return true;
  } catch (const WorkerDown& e) {
    *error = e.what();
    return false;
  } catch (const CheckError& e) {
    workers_[s].MarkDown();
    *error = e.what();
    return false;
  }
}

void Coordinator::ReconcileWorkers(std::vector<std::string>* lines) {
  for (size_t s = 0; s < workers_.size(); ++s) {
    std::string line = "worker " + std::to_string(s) + ": ";
    if (workers_[s].down()) {
      if (lines != nullptr) {
        lines->push_back(line + "down (respawn to resync)");
      }
      continue;
    }
    ResyncStats stats;
    std::string error;
    if (ResyncWorker(s, &stats, &error)) {
      line += (stats.full ? "full resync, " : "tail resync, ") +
              std::to_string(stats.entries) + " entries, " +
              std::to_string(stats.bytes) + " bytes";
    } else {
      line += "resync failed (" + error + ")";
    }
    if (lines != nullptr) lines->push_back(line);
  }
}

bool Coordinator::Respawn(size_t s, std::string* error, ResyncStats* stats) {
  if (s >= workers_.size()) {
    *error = "no worker " + std::to_string(s);
    return false;
  }
  if (spawner_ == nullptr) {
    *error = "no worker spawner configured";
    return false;
  }
  RemoteShard fresh(static_cast<uint32_t>(s), Socket(), 0);
  if (!spawner_(static_cast<uint32_t>(s), &fresh, error)) return false;
  // The replacement stub inherits the RPC deadline BEFORE the handshake: a
  // SIGSTOP'd standalone worker accepts the connect (kernel backlog) and
  // only the handshake recv would reveal the hang.
  fresh.set_rpc_options(workers_[s].rpc_options());
  HelloMsg hello;
  hello.semiring = semiring_;
  hello.shard_index = static_cast<uint32_t>(s);
  hello.num_shards = static_cast<uint32_t>(workers_.size());
  if (!fresh.Handshake(hello)) {
    *error = "handshake with respawned worker failed";
    return false;
  }
  workers_[s] = std::move(fresh);

  // A forked replacement is blank and takes the full rebuild; a standalone
  // worker that kept its state across the reconnect proves its position
  // and gets just the tail.
  ResyncStats local_stats;
  if (!ResyncWorker(s, &local_stats, error)) return false;
  if (stats != nullptr) *stats = local_stats;
  return true;
}

void Coordinator::Shutdown() {
  for (RemoteShard& worker : workers_) worker.Shutdown();
}

// -- Fault tolerance ---------------------------------------------------------

const char* WorkerHealthName(WorkerHealth health) {
  switch (health) {
    case WorkerHealth::kHealthy:
      return "healthy";
    case WorkerHealth::kSuspect:
      return "suspect";
    case WorkerHealth::kDown:
      return "down";
    case WorkerHealth::kDegraded:
      return "degraded";
  }
  return "unknown";
}

void Coordinator::ConfigureFaultTolerance(
    const FaultToleranceOptions& options) {
  ft_options_ = options;
  if (ft_options_.clock == nullptr) ft_options_.clock = Clock::Real();
  RpcOptions rpc;
  rpc.deadline_ms = ft_options_.rpc_deadline_ms;
  for (RemoteShard& worker : workers_) worker.set_rpc_options(rpc);
  health_.clear();
  health_.resize(workers_.size());
  for (size_t s = 0; s < health_.size(); ++s) {
    // Decorrelate the jittered respawn schedules so a mass outage does not
    // hammer the spawner in lockstep.
    BackoffPolicy policy = ft_options_.respawn_backoff;
    policy.seed += s;
    health_[s].respawn_backoff = ExponentialBackoff(policy);
    health_[s].breaker = std::make_unique<CircuitBreaker>(
        ft_options_.respawn_max_failures, ft_options_.respawn_window_ms,
        ft_options_.clock);
  }
}

WorkerHealth Coordinator::Health(size_t s) const {
  if (s >= workers_.size()) return WorkerHealth::kDown;
  if (!workers_[s].down()) return WorkerHealth::kHealthy;
  if (s >= health_.size()) return WorkerHealth::kDown;
  const WorkerHealthState& h = health_[s];
  if (h.circuit_open) return WorkerHealth::kDegraded;
  return h.misses < ft_options_.down_after_misses ? WorkerHealth::kSuspect
                                                  : WorkerHealth::kDown;
}

void Coordinator::HeartbeatTick(std::vector<std::string>* lines) {
  if (health_.empty()) return;
  auto note = [lines](std::string text) {
    if (lines != nullptr) lines->push_back(std::move(text));
  };
  int open_circuits = 0;
  for (size_t s = 0; s < workers_.size(); ++s) {
    WorkerHealthState& h = health_[s];
    std::string who = "worker " + std::to_string(s);
    if (!workers_[s].down()) {
      PVCDB_COUNTER_ADD("coordinator.heartbeats_sent", 1);
      PongMsg pong;
      if (workers_[s].Ping(next_ping_nonce_++, &pong)) {
        if (h.misses != 0) note(who + ": healthy (heartbeat restored)");
        h.misses = 0;
        h.circuit_open = false;
        h.respawn_backoff.Reset();
        h.breaker->RecordSuccess();
        continue;
      }
      // Ping marked the stub down (the transport is poisoned); the walk
      // below decides suspect vs down and whether to respawn next ticks.
      PVCDB_COUNTER_ADD("coordinator.heartbeats_missed", 1);
      ++h.misses;
      note("warning: " + who + " " +
           WorkerHealthName(h.misses < ft_options_.down_after_misses
                                ? WorkerHealth::kSuspect
                                : WorkerHealth::kDown) +
           " (heartbeat missed, " + std::to_string(h.misses) + "/" +
           std::to_string(ft_options_.down_after_misses) + ")");
      continue;
    }
    // Transport already down: a ping failed on an earlier tick, or a query
    // RPC timed out in between (a miss count of zero means the latter).
    // Every tick spent down is a missed beat, so the suspect -> down walk
    // advances even when nothing can be pinged.
    int before = h.misses;
    if (h.misses < ft_options_.down_after_misses) ++h.misses;
    if (before == 0) {
      note("warning: " + who + " suspect (rpc failure)");
    } else if (before < ft_options_.down_after_misses &&
               h.misses >= ft_options_.down_after_misses) {
      note("warning: " + who + " down (" + std::to_string(h.misses) +
           " heartbeats missed)");
    }
    if (!ft_options_.auto_respawn) {
      if (h.circuit_open) ++open_circuits;
      continue;
    }
    if (h.breaker->open()) {
      if (!h.circuit_open) {
        note("warning: " + who + " circuit open (" +
             std::to_string(h.breaker->failures_in_window()) +
             " respawn failures in " +
             std::to_string(ft_options_.respawn_window_ms) +
             "ms); shard degraded, serving from local replica");
      }
      h.circuit_open = true;
      ++open_circuits;
      continue;
    }
    h.circuit_open = false;
    if (ft_options_.clock->NowMillis() < h.next_respawn_at_ms) continue;
    std::string error;
    ResyncStats stats;
    if (Respawn(s, &error, &stats)) {
      PVCDB_COUNTER_ADD("coordinator.auto_respawns", 1);
      h.misses = 0;
      h.respawn_backoff.Reset();
      h.breaker->RecordSuccess();
      note(who + ": respawned (" + (stats.full ? "full" : "tail") +
           " resync, " + std::to_string(stats.entries) + " entries)");
    } else {
      h.breaker->RecordFailure();
      uint64_t delay = h.respawn_backoff.NextDelayMs();
      h.next_respawn_at_ms = ft_options_.clock->NowMillis() + delay;
      if (h.breaker->open()) {
        h.circuit_open = true;
        ++open_circuits;
        note("warning: " + who + " circuit open (" +
             std::to_string(h.breaker->failures_in_window()) +
             " respawn failures in " +
             std::to_string(ft_options_.respawn_window_ms) +
             "ms); shard degraded, serving from local replica");
      } else {
        note("warning: " + who + " respawn failed (" + error +
             "); next attempt in " + std::to_string(delay) + "ms");
      }
    }
  }
  PVCDB_GAUGE_SET("coordinator.circuit_open",
                  static_cast<int64_t>(open_circuits));
}

std::vector<std::pair<uint64_t, uint32_t>> Coordinator::ShardTails() const {
  std::vector<std::pair<uint64_t, uint32_t>> tails;
  tails.reserve(logs_.size());
  for (const ShardLog& log : logs_) {
    tails.emplace_back(log.end_lsn(), log.end_chain());
  }
  return tails;
}

void Coordinator::RebaseShardLogs(
    const std::vector<std::pair<uint64_t, uint32_t>>& tails) {
  if (tails.size() != logs_.size()) return;
  for (size_t s = 0; s < logs_.size(); ++s) {
    logs_[s].Clear();
    logs_[s].base_lsn = tails[s].first;
    logs_[s].base_chain = tails[s].second;
  }
  // Every variable the snapshot rebuilt was covered by kSyncVars entries
  // in the live logs the tails describe; only genuinely newer variables
  // (from the WAL tail about to replay) still need flushing.
  logged_vars_ = local_.variables().size();
}

// -- Observability ----------------------------------------------------------

std::vector<MetricSnapshot> Coordinator::AggregatedStats() {
  std::vector<MetricSnapshot> out = MetricsRegistry::Global().Snapshot();
  for (size_t s = 0; s < workers_.size(); ++s) {
    if (workers_[s].down()) continue;
    std::string reply;
    try {
      reply = workers_[s].Call(MsgKind::kStatsRequest, std::string(),
                               MsgKind::kStatsReply);
    } catch (const WorkerDown&) {
      continue;
    } catch (const CheckError&) {
      continue;
    }
    StatsReplyMsg msg;
    if (!StatsReplyMsg::Decode(reply, &msg)) continue;
    std::string prefix = "shard" + std::to_string(s) + ".";
    for (MetricSnapshot& entry : msg.entries) {
      entry.name = prefix + entry.name;
      out.push_back(std::move(entry));
    }
  }
  return out;
}

bool Coordinator::WorkerTail(size_t s, uint64_t* lsn, uint32_t* chain) {
  if (s >= workers_.size() || workers_[s].down()) return false;
  try {
    ReplayTailMsg probe;
    probe.base_lsn = logs_[s].base_lsn;
    std::string reply = workers_[s].Call(MsgKind::kReplayTail, probe.Encode(),
                                         MsgKind::kTailInfo);
    TailInfoMsg info;
    if (!TailInfoMsg::Decode(reply, &info)) return false;
    *lsn = info.lsn;
    *chain = info.chain;
    return true;
  } catch (const WorkerDown&) {
    return false;
  } catch (const CheckError&) {
    return false;
  }
}

}  // namespace pvcdb
