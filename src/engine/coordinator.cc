#include "src/engine/coordinator.h"

#include <algorithm>

#include "src/engine/delta.h"
#include "src/util/check.h"

namespace pvcdb {

Coordinator::Coordinator(SemiringKind semiring,
                         std::vector<RemoteShard> workers,
                         WorkerSpawner spawner)
    : semiring_(semiring),
      local_(semiring),
      workers_(std::move(workers)),
      spawner_(std::move(spawner)),
      synced_vars_(workers_.size(), 0) {
  PVC_CHECK_MSG(!workers_.empty(), "a coordinator needs >= 1 worker");
  for (size_t s = 0; s < workers_.size(); ++s) {
    HelloMsg hello;
    hello.semiring = semiring_;
    hello.shard_index = static_cast<uint32_t>(s);
    hello.num_shards = static_cast<uint32_t>(workers_.size());
    workers_[s].Handshake(hello);  // Failure marks the worker down.
  }
}

std::string Coordinator::DownWarning(const char* what) const {
  std::string warning = "warning:";
  for (size_t s = 0; s < workers_.size(); ++s) {
    if (workers_[s].down()) warning += " worker " + std::to_string(s);
  }
  warning += " down; ";
  warning += what;
  return warning;
}

void Coordinator::MarkDiverged(size_t s, const std::string& why) {
  // A healthy worker rejecting a replicated mutation means its state no
  // longer mirrors the replica's; keep the connection out of every future
  // scatter until a respawn rebuilds it. (The engine invariant message is
  // intentionally dropped: the replica already applied the mutation, and
  // correctness is preserved by the fallback path.)
  (void)why;
  workers_[s].MarkDown();
}

void Coordinator::SyncVarsTo(size_t s) {
  const VariableTable& variables = local_.variables();
  if (synced_vars_[s] >= variables.size()) return;
  SyncVarsMsg msg;
  msg.first_id = static_cast<VarId>(synced_vars_[s]);
  msg.entries.reserve(variables.size() - synced_vars_[s]);
  for (size_t v = synced_vars_[s]; v < variables.size(); ++v) {
    VarSyncEntry entry;
    entry.name = variables.NameOf(static_cast<VarId>(v));
    entry.distribution = variables.DistributionOf(static_cast<VarId>(v));
    msg.entries.push_back(std::move(entry));
  }
  workers_[s].SyncVars(msg);
  synced_vars_[s] = variables.size();
}

template <typename Reply>
bool Coordinator::Scatter(MsgKind kind, const std::string& payload,
                          MsgKind expect, std::vector<Reply>* replies) {
  size_t n = workers_.size();
  replies->assign(n, Reply{});
  std::vector<bool> sent(n, false);
  bool complete = true;
  for (size_t s = 0; s < n; ++s) {
    if (workers_[s].down()) {
      complete = false;
      continue;
    }
    try {
      SyncVarsTo(s);
      workers_[s].SendRequest(kind, payload);
      sent[s] = true;
    } catch (const WorkerDown&) {
      complete = false;
    }
  }
  // Drain every pending reply even after a failure: the request/reply
  // sequencing of the surviving connections must stay aligned.
  std::string request_error;
  for (size_t s = 0; s < n; ++s) {
    if (!sent[s]) continue;
    try {
      std::string reply = workers_[s].RecvReply(expect);
      if (!Reply::Decode(reply, &(*replies)[s])) {
        workers_[s].MarkDown();
        complete = false;
      }
    } catch (const WorkerDown&) {
      complete = false;
    } catch (const CheckError& e) {
      // The worker is healthy; the request itself was bad. Surface the
      // first such error to the caller once the scatter is drained.
      if (request_error.empty()) request_error = e.what();
    }
  }
  if (!request_error.empty()) throw CheckError(request_error);
  return complete;
}

// -- Catalog ----------------------------------------------------------------

void Coordinator::AddTupleIndependentTable(
    const std::string& name, Schema schema,
    std::vector<std::vector<Cell>> rows, std::vector<double> probabilities) {
  PVC_CHECK_MSG(schema.NumColumns() > 0, "cannot shard a zero-column table");
  const size_t key_index = 0;  // CSV loads route by the primary key.
  VarId var_base = static_cast<VarId>(local_.variables().size());
  size_t num_rows = rows.size();
  std::vector<VarId> vars;
  vars.reserve(num_rows);
  for (size_t i = 0; i < num_rows; ++i) {
    vars.push_back(var_base + static_cast<VarId>(i));
  }
  // The replica performs the exact load an unsharded Database would:
  // Bernoulli variables in global row order, VarIds matching.
  local_.AddTupleIndependentTable(name, std::move(schema), std::move(rows),
                                  std::move(probabilities));

  // Partition the loaded logical table across the workers, mirroring
  // ShardedDatabase::PartitionLoadedTable.
  const PvcTable& logical = local_.table(name);
  std::vector<LoadPartitionMsg> parts(workers_.size());
  std::string key_name = logical.schema().column(key_index).name;
  for (size_t s = 0; s < workers_.size(); ++s) {
    parts[s].table = name;
    parts[s].key_column = key_name;
    parts[s].schema = logical.schema();
  }
  std::vector<std::pair<uint32_t, uint32_t>> placement;
  placement.reserve(logical.NumRows());
  for (size_t i = 0; i < logical.NumRows(); ++i) {
    size_t s = router_.Route(logical.row(i).cells[key_index],
                             workers_.size());
    placement.emplace_back(static_cast<uint32_t>(s),
                           static_cast<uint32_t>(parts[s].rows.size()));
    parts[s].rows.push_back(logical.row(i).cells);
    parts[s].vars.push_back(vars[i]);
    parts[s].global_rows.push_back(i);
  }
  placements_[name] = std::move(placement);
  key_columns_[name] = key_index;
  table_vars_[name] = std::move(vars);

  for (size_t s = 0; s < workers_.size(); ++s) {
    if (workers_[s].down()) continue;  // Respawn resyncs in full.
    try {
      SyncVarsTo(s);
      workers_[s].LoadPartition(parts[s]);
      // The worker re-seeds its views of the replaced table itself.
    } catch (const WorkerDown&) {
    } catch (const CheckError& e) {
      MarkDiverged(s, e.what());
    }
  }
}

std::vector<size_t> Coordinator::ShardRowCounts(
    const std::string& name) const {
  auto it = placements_.find(name);
  PVC_CHECK_MSG(it != placements_.end(),
                "no sharded table named '" << name << "'");
  std::vector<size_t> counts(workers_.size(), 0);
  for (const auto& [s, r] : it->second) ++counts[s];
  return counts;
}

// -- Mutations --------------------------------------------------------------

size_t Coordinator::InsertTuple(const std::string& table,
                                std::vector<Cell> cells, double p) {
  auto key_it = key_columns_.find(table);
  PVC_CHECK_MSG(key_it != key_columns_.end(),
                "no sharded table named '" << table << "'");
  PVC_CHECK_MSG(key_it->second < cells.size(), "row is missing its key cell");

  // The replica replays the unsharded mutation first (fresh Bernoulli
  // variable with the next global id, replica-registered views absorb the
  // delta), then the owning worker gets the routed append.
  VarId x = static_cast<VarId>(local_.variables().size());
  size_t global_row = local_.InsertTuple(table, cells, p);
  table_vars_[table].push_back(x);

  size_t s = router_.Route(cells[key_it->second], workers_.size());
  std::vector<std::pair<uint32_t, uint32_t>>& placement = placements_[table];
  uint32_t shard_row = 0;
  for (const auto& [ps, pr] : placement) {
    if (ps == s) ++shard_row;
  }
  placement.emplace_back(static_cast<uint32_t>(s), shard_row);

  if (!workers_[s].down()) {
    AppendRowMsg msg;
    msg.table = table;
    msg.cells = std::move(cells);
    msg.var = x;
    msg.global_row = global_row;
    try {
      SyncVarsTo(s);
      workers_[s].AppendRow(msg);
    } catch (const WorkerDown&) {
    } catch (const CheckError& e) {
      MarkDiverged(s, e.what());
    }
  }
  return global_row;
}

void Coordinator::DeleteRowAt(const std::string& table, size_t row_index) {
  auto it = placements_.find(table);
  PVC_CHECK_MSG(it != placements_.end(),
                "no sharded table named '" << table << "'");
  std::vector<std::pair<uint32_t, uint32_t>>& placement = it->second;
  PVC_CHECK_MSG(row_index < placement.size(),
                "row index " << row_index << " out of range");
  auto [s, shard_row] = placement[row_index];

  local_.DeleteRowAt(table, row_index);
  placement.erase(placement.begin() + static_cast<ptrdiff_t>(row_index));
  for (auto& [ps, pr] : placement) {
    if (ps == s && pr > shard_row) --pr;
  }
  std::vector<VarId>& vars = table_vars_[table];
  vars.erase(vars.begin() + static_cast<ptrdiff_t>(row_index));

  // Broadcast: the owner drops its local row, everyone shifts global ids.
  for (size_t w = 0; w < workers_.size(); ++w) {
    if (workers_[w].down()) continue;
    DeleteRowMsg msg;
    msg.table = table;
    msg.has_local_row = (w == s);
    msg.local_row = shard_row;
    msg.global_row = row_index;
    try {
      workers_[w].DeleteRow(msg);
    } catch (const WorkerDown&) {
    } catch (const CheckError& e) {
      MarkDiverged(w, e.what());
    }
  }
}

size_t Coordinator::DeleteTuple(const std::string& table, const Cell& key) {
  return DeleteRowsMatchingKey(
      local_.table(table), key,
      [&](size_t index) { DeleteRowAt(table, index); });
}

void Coordinator::UpdateProbability(VarId var, double p) {
  local_.UpdateProbability(var, p);
  for (size_t s = 0; s < workers_.size(); ++s) {
    if (workers_[s].down()) continue;
    // A worker that has not synced this variable yet receives the new
    // distribution with its first sync -- nothing to replay.
    if (synced_vars_[s] <= var) continue;
    try {
      workers_[s].UpdateVar(var, p);
    } catch (const WorkerDown&) {
    } catch (const CheckError& e) {
      MarkDiverged(s, e.what());
    }
  }
}

// -- Queries ----------------------------------------------------------------

bool Coordinator::Distributable(const Query& q, std::string* driving) const {
  std::optional<std::string> table = ShardDrivingTable(q);
  if (!table.has_value() || placements_.count(*table) == 0) return false;
  if (local_.table(*table).schema().Find(kShardRowIdColumn).has_value()) {
    return false;
  }
  if (QueryMentionsColumn(q, kShardRowIdColumn)) return false;
  *driving = *table;
  return true;
}

QueryRun Coordinator::GatherChainRows(const Schema& schema,
                                      std::vector<ChainResultMsg> replies) {
  std::vector<ChainRow> merged;
  for (ChainResultMsg& reply : replies) {
    for (ChainRow& row : reply.rows) merged.push_back(std::move(row));
  }
  std::sort(merged.begin(), merged.end(),
            [](const ChainRow& a, const ChainRow& b) {
              return a.global_row < b.global_row;
            });

  QueryRun run;
  run.schema = schema;
  run.distributed = true;
  // Render through a scratch pool, like ShardedDatabase::ResultToString:
  // annotations of the distributable fragment are single variables, so the
  // text matches the replica's rendering exactly.
  ExprPool scratch(semiring_);
  PvcTable gathered{schema};
  run.probabilities.reserve(merged.size());
  for (const ChainRow& row : merged) {
    gathered.AddRow(row.cells, scratch.Var(row.var));
    run.probabilities.push_back(row.probability);
  }
  run.text = gathered.ToString(&scratch);
  return run;
}

QueryRun Coordinator::EvalChainLocally(const Query& q) {
  QueryRun run;
  PvcTable result = local_.Run(q);
  run.schema = result.schema();
  run.text = result.ToString(&local_.pool());
  run.probabilities = local_.TupleProbabilities(result);
  run.local_result = std::move(result);
  return run;
}

QueryRun Coordinator::Run(const Query& q) {
  std::string driving;
  if (Distributable(q, &driving)) {
    EvalChainMsg msg;
    msg.table = driving;
    // Non-owning alias: the message only lives for this call, and Encode
    // just serializes the query.
    msg.query = QueryPtr(&q, [](const Query*) {});
    std::string payload = msg.Encode();
    std::vector<ChainResultMsg> replies;
    if (Scatter<ChainResultMsg>(MsgKind::kEvalChain, payload,
                                MsgKind::kChainResult, &replies)) {
      Schema schema = replies.empty() ? Schema{} : replies[0].schema;
      return GatherChainRows(schema, std::move(replies));
    }
    QueryRun run = EvalChainLocally(q);
    run.warnings.push_back(DownWarning("evaluated on coordinator"));
    return run;
  }
  // Gather shapes (joins, aggregates, projections, unions) always run on
  // the replica -- the same division of labor as the in-process facade.
  return EvalChainLocally(q);
}

Distribution Coordinator::ConditionalAggregateDistribution(
    const QueryRun& run, size_t row_index, const std::string& column) {
  PVC_CHECK_MSG(!run.distributed,
                "aggregation columns only occur on coordinator-evaluated "
                "results (aggregates always gather)");
  return local_.ConditionalAggregateDistribution(run.local_result, row_index,
                                                 column);
}

// -- Materialized views -----------------------------------------------------

Coordinator::RemoteView* Coordinator::FindRemoteView(const std::string& name) {
  for (RemoteView& view : remote_views_) {
    if (view.name == name) return &view;
  }
  return nullptr;
}

size_t Coordinator::RegisterView(const std::string& name, QueryPtr query,
                                 std::vector<std::string>* warnings) {
  std::string driving;
  if (Distributable(*query, &driving)) {
    // Validate the chain on the replica first (bad column names and the
    // like fail here, before any worker state changes; chains intern
    // nothing, so the replica's pool is undisturbed). The row count of the
    // materialization is the local count in every case.
    size_t rows = local_.Run(*query).NumRows();

    RegisterChainViewMsg msg;
    msg.name = name;
    msg.table = driving;
    msg.query = query;
    std::string payload = msg.Encode();
    std::vector<OkMsg> replies;
    if (!Scatter<OkMsg>(MsgKind::kRegisterChainView, payload, MsgKind::kOk,
                        &replies) &&
        warnings != nullptr) {
      warnings->push_back(
          DownWarning("view registered; down workers resync on respawn"));
    }
    if (RemoteView* existing = FindRemoteView(name)) {
      existing->driving = driving;
      existing->query = std::move(query);
    } else {
      remote_views_.push_back({name, driving, std::move(query)});
    }
    // The name may previously have named a replica view.
    if (local_.HasView(name)) local_.DropView(name);
    return rows;
  }

  size_t rows = local_.RegisterView(name, std::move(query)).NumRows();
  // Retire a same-name remote view only now that the replacement exists.
  for (auto it = remote_views_.begin(); it != remote_views_.end(); ++it) {
    if (it->name == name) {
      remote_views_.erase(it);
      NameMsg msg;
      msg.name = name;
      std::string payload = msg.Encode();
      std::vector<OkMsg> replies;
      Scatter<OkMsg>(MsgKind::kDropChainView, payload, MsgKind::kOk,
                     &replies);
      break;
    }
  }
  return rows;
}

bool Coordinator::HasView(const std::string& name) const {
  for (const RemoteView& view : remote_views_) {
    if (view.name == name) return true;
  }
  return local_.HasView(name);
}

QueryRun Coordinator::PrintView(const std::string& name) {
  if (RemoteView* view = FindRemoteView(name)) {
    NameMsg msg;
    msg.name = name;
    std::string payload = msg.Encode();
    std::vector<ChainResultMsg> replies;
    if (Scatter<ChainResultMsg>(MsgKind::kViewProbs, payload,
                                MsgKind::kChainResult, &replies)) {
      Schema schema = replies.empty() ? Schema{} : replies[0].schema;
      return GatherChainRows(schema, std::move(replies));
    }
    // Fallback: recompute on the replica (no cache, identical values).
    QueryRun run = EvalChainLocally(*view->query);
    run.warnings.push_back(DownWarning("evaluated on coordinator"));
    return run;
  }
  QueryRun run;
  PvcTable result = local_.ViewTable(name);  // Copy: refresh + snapshot.
  run.schema = result.schema();
  run.text = result.ToString(&local_.pool());
  run.probabilities = local_.ViewProbabilities(name);
  run.local_result = std::move(result);
  return run;
}

std::vector<ShardedDatabase::ViewInfo> Coordinator::ViewInfos() {
  std::vector<ShardedDatabase::ViewInfo> infos;
  for (RemoteView& view : remote_views_) {
    ShardedDatabase::ViewInfo info;
    info.name = view.name;
    info.plan = "chain (per shard)";
    NameMsg msg;
    msg.name = view.name;
    std::string payload = msg.Encode();
    std::vector<ViewInfoMsg> replies;
    if (Scatter<ViewInfoMsg>(MsgKind::kViewInfo, payload,
                             MsgKind::kViewInfoResult, &replies)) {
      for (const ViewInfoMsg& reply : replies) {
        info.rows += reply.rows;
        info.cache_entries += reply.cache_entries;
      }
    } else {
      // Degraded: the row count comes from the replica, cache entries
      // from whatever workers answered.
      info.rows = local_.Run(*view.query).NumRows();
      for (const ViewInfoMsg& reply : replies) {
        info.cache_entries += reply.cache_entries;
      }
    }
    infos.push_back(std::move(info));
  }
  for (const std::string& name : local_.ViewNames()) {
    const MaterializedView& view = local_.views().view(name);
    ShardedDatabase::ViewInfo info;
    info.name = name;
    info.plan = MaterializedView::PlanName(view.plan());
    info.rows = local_.ViewTable(name).NumRows();
    info.cache_entries = view.step_two().size();
    infos.push_back(std::move(info));
  }
  return infos;
}

// -- Worker management ------------------------------------------------------

LoadPartitionMsg Coordinator::PartitionFor(const std::string& name,
                                           size_t s) const {
  const PvcTable& logical = local_.table(name);
  const auto& placement = placements_.at(name);
  const std::vector<VarId>& vars = table_vars_.at(name);
  LoadPartitionMsg msg;
  msg.table = name;
  msg.key_column = logical.schema().column(key_columns_.at(name)).name;
  msg.schema = logical.schema();
  for (size_t i = 0; i < placement.size(); ++i) {
    if (placement[i].first != s) continue;
    msg.rows.push_back(logical.row(i).cells);
    msg.vars.push_back(vars[i]);
    msg.global_rows.push_back(i);
  }
  return msg;
}

bool Coordinator::Respawn(size_t s, std::string* error) {
  if (s >= workers_.size()) {
    *error = "no worker " + std::to_string(s);
    return false;
  }
  if (spawner_ == nullptr) {
    *error = "no worker spawner configured";
    return false;
  }
  RemoteShard fresh(static_cast<uint32_t>(s), Socket(), 0);
  if (!spawner_(static_cast<uint32_t>(s), &fresh, error)) return false;
  HelloMsg hello;
  hello.semiring = semiring_;
  hello.shard_index = static_cast<uint32_t>(s);
  hello.num_shards = static_cast<uint32_t>(workers_.size());
  if (!fresh.Handshake(hello)) {
    *error = "handshake with respawned worker failed";
    return false;
  }
  workers_[s] = std::move(fresh);
  synced_vars_[s] = 0;

  // Full resync: variables, then every partition (map order -- placement
  // and annotations reproduce the original load exactly), then the remote
  // chain views (the registration re-seeds them from the partitions).
  try {
    SyncVarsTo(s);
    for (const auto& [name, placement] : placements_) {
      (void)placement;
      workers_[s].LoadPartition(PartitionFor(name, s));
    }
    for (const RemoteView& view : remote_views_) {
      RegisterChainViewMsg msg;
      msg.name = view.name;
      msg.table = view.driving;
      msg.query = view.query;
      workers_[s].RegisterChainView(msg);
    }
  } catch (const WorkerDown& e) {
    *error = e.what();
    return false;
  } catch (const CheckError& e) {
    workers_[s].MarkDown();
    *error = e.what();
    return false;
  }
  return true;
}

void Coordinator::Shutdown() {
  for (RemoteShard& worker : workers_) worker.Shutdown();
}

}  // namespace pvcdb
