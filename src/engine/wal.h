// The write-ahead log of the durability layer (see src/engine/README.md
// for the on-disk format and the recovery invariants).
//
// Every logical mutation of a Database / ShardedDatabase -- table loads,
// row inserts and deletes, probability updates, view registration and
// drops, and topology resharding -- appends exactly one WalRecord before
// the engine considers the mutation durable. A record holds the ops that
// make the mutation replayable against the *rebuild hooks* of the engine
// (VariableTable::Add in creation order, AddVariableAnnotatedTable,
// AppendRowToTable), i.e. exactly the replay shape whose bit-identity to a
// live mutated engine the IVM oracle (tests/ivm_test.cc) proves. Replaying
// a prefix of records therefore reconstructs, bit for bit, the engine
// state after the corresponding prefix of logical mutations -- which is
// what makes crash recovery exact.
//
// File layout:
//
//   "PVCWAL01"                                    8-byte magic
//   repeated records:
//     u32 payload_len  (little-endian)
//     u32 crc32c(payload)
//     payload          (encoded ops, see EncodeWalOps)
//
// A crash can tear the last record (or the magic itself). ReadWal scans
// the longest valid prefix: it stops at the first record whose header is
// short, whose payload is short, whose CRC mismatches, or whose payload
// fails to decode, and reports the prefix length so recovery can truncate
// the tail and resume appending.

#ifndef PVCDB_ENGINE_WAL_H_
#define PVCDB_ENGINE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/prob/distribution.h"
#include "src/prob/variable.h"
#include "src/query/ast.h"
#include "src/table/cell.h"
#include "src/table/schema.h"
#include "src/util/io.h"

namespace pvcdb {

/// One replayable operation inside a WAL record.
enum class WalOpType : uint8_t {
  kRegisterVariable = 1,   ///< VariableTable::Add (creation order).
  kCreateTable = 2,        ///< AddVariableAnnotatedTable.
  kInsertRow = 3,          ///< AppendRowToTable with an existing variable.
  kDeleteRow = 4,          ///< DeleteRowAt.
  kUpdateProbability = 5,  ///< UpdateProbability.
  kRegisterView = 6,       ///< RegisterView (replaces an existing name).
  kDropView = 7,           ///< DropView.
  kReshard = 8,            ///< Topology change (DurableSession::Reshard).
};

/// A tagged union of the op payloads (only the fields of the op's type are
/// meaningful; build ops through the factories).
struct WalOp {
  WalOpType type = WalOpType::kInsertRow;

  std::string name;  ///< Variable / table / view name.

  Distribution distribution;            ///< kRegisterVariable.
  Schema schema;                        ///< kCreateTable.
  std::string key_column;               ///< kCreateTable ("" = first column).
  std::vector<std::vector<Cell>> rows;  ///< kCreateTable.
  std::vector<VarId> vars;              ///< kCreateTable (one per row).
  std::vector<Cell> cells;              ///< kInsertRow.
  VarId var = 0;                        ///< kInsertRow, kUpdateProbability.
  uint64_t row_index = 0;               ///< kDeleteRow.
  double probability = 0.0;             ///< kUpdateProbability.
  QueryPtr query;                       ///< kRegisterView.
  uint64_t num_shards = 0;              ///< kReshard (0 = unsharded).

  static WalOp RegisterVariable(std::string name, Distribution distribution);
  static WalOp CreateTable(std::string name, Schema schema,
                           std::string key_column,
                           std::vector<std::vector<Cell>> rows,
                           std::vector<VarId> vars);
  static WalOp InsertRow(std::string table, std::vector<Cell> cells,
                         VarId var);
  static WalOp DeleteRow(std::string table, uint64_t row_index);
  static WalOp UpdateProbability(VarId var, double probability);
  static WalOp RegisterView(std::string name, QueryPtr query);
  static WalOp DropView(std::string name);
  static WalOp Reshard(uint64_t num_shards);
};

/// One atomic unit of the log: the ops of a single logical mutation. The
/// record either survives a crash whole or not at all (torn records are
/// discarded), so recovered states are exact logical-mutation prefixes.
struct WalRecord {
  std::vector<WalOp> ops;
};

/// Encodes `ops` into a record payload.
std::string EncodeWalOps(const std::vector<WalOp>& ops);

/// Decodes a record payload; false when the payload is malformed (recovery
/// treats that exactly like a CRC mismatch).
bool DecodeWalOps(const std::string& payload, std::vector<WalOp>* ops);

/// Appends records to one WAL file.
class WalWriter {
 public:
  /// Opens `path` for appending. With `existing_bytes` == 0 the file is
  /// expected to be empty and the magic is written; otherwise the caller
  /// (recovery) has validated that the file holds `existing_bytes` bytes
  /// of magic + whole records (`existing_records` of them). `sync` fsyncs
  /// after every append. nullptr + `*error` on I/O failure.
  static std::unique_ptr<WalWriter> Open(FileSystem* fs,
                                         const std::string& path,
                                         uint64_t existing_bytes,
                                         uint64_t existing_records, bool sync,
                                         std::string* error);

  /// Appends one record (header + payload in a single write call, so a
  /// torn write tears the record, never record boundaries). False when the
  /// write failed -- the record must be considered torn and the engine
  /// stops accepting mutations (see LogWalRecord).
  bool Append(const WalRecord& record);

  /// Group commit: fsyncs the file, making every append so far durable in
  /// one device round-trip. A no-op when nothing is pending. Only
  /// meaningful with `sync` == false at Open; the per-append mode has
  /// nothing pending by construction.
  bool Sync();

  /// True when appends have happened since the last fsync -- replies
  /// acknowledging them must be held until Sync() succeeds.
  bool HasUnsyncedAppends() const { return unsynced_appends_ > 0; }
  uint64_t unsynced_appends() const { return unsynced_appends_; }

  uint64_t bytes() const { return bytes_; }
  uint64_t records() const { return records_; }
  const std::string& path() const { return path_; }

 private:
  WalWriter(std::unique_ptr<WritableFile> file, std::string path, bool sync,
            uint64_t bytes, uint64_t records);

  std::unique_ptr<WritableFile> file_;
  std::string path_;
  bool sync_;
  uint64_t bytes_;
  uint64_t records_;
  uint64_t unsynced_appends_ = 0;
};

/// Appends `record` and fails a PVC_CHECK when the append does not fully
/// succeed: a mutation whose record cannot be made durable must not report
/// success (the in-memory state may already include it; the process is
/// treated as crashed and the next recovery serves the durable prefix).
void LogWalRecord(WalWriter* wal, const WalRecord& record);

/// The longest valid prefix of a WAL file.
struct WalReadResult {
  bool file_exists = false;
  bool magic_valid = false;        ///< False also tears the whole file.
  std::vector<WalRecord> records;  ///< Fully valid records, in log order.
  uint64_t valid_bytes = 0;  ///< Magic + whole records (0 on bad magic).
  uint64_t file_bytes = 0;
  bool torn_tail = false;  ///< Bytes past valid_bytes exist (crash debris).
  std::string error;       ///< I/O failure reading the file (not torn data).
};

/// Scans `path`, validating magic, lengths, checksums and payload
/// decoding; stops at the first invalid byte.
WalReadResult ReadWal(FileSystem* fs, const std::string& path);

}  // namespace pvcdb

#endif  // PVCDB_ENGINE_WAL_H_
