// Sensitivity analysis and conditioning on d-tree-compiled expressions.
//
// The paper points out (Section 1) that decomposition trees benefit more
// complex tasks beyond confidence computation: conditioning probabilistic
// databases on constraints (Koch & Olteanu [14]) and sensitivity analysis /
// explanation of query results (Kanagal, Li & Deshpande [11]). Both follow
// directly from the mutex decomposition (Eq. 10):
//
//   P[Phi != 0] = Sum_s P_x[s] * P[Phi|x<-s != 0]
//
// so the partial derivative of a tuple's probability with respect to one
// input-tuple probability p_x (Boolean x) is
//
//   d P / d p_x = P[Phi|x<-1 != 0] - P[Phi|x<-0 != 0],
//
// the classic influence / Banzhaf value of x on Phi; and conditioning on a
// constraint Gamma is P[Phi != 0 | Gamma != 0] via the joint distribution.

#ifndef PVCDB_ENGINE_SENSITIVITY_H_
#define PVCDB_ENGINE_SENSITIVITY_H_

#include <vector>

#include "src/dtree/compile.h"
#include "src/expr/expr.h"
#include "src/prob/variable.h"

namespace pvcdb {

/// Influence of one variable on P[e != 0].
struct VariableInfluence {
  VarId variable;
  /// dP/dp_x = P[e|x<-1 != 0] - P[e|x<-0 != 0] (for Boolean x).
  double influence;
};

/// Computes the influence of every variable occurring in `e` (which must be
/// semiring-sorted over Boolean variables), sorted by decreasing absolute
/// influence -- the "explanation" ranking of [11].
std::vector<VariableInfluence> SensitivityAnalysis(
    ExprPool* pool, const VariableTable& variables, ExprId e,
    CompileOptions options = CompileOptions());

/// P[phi != 0 | gamma != 0]: the probability of a tuple (annotation `phi`)
/// conditioned on a constraint `gamma` holding, as in conditioning
/// probabilistic databases [14]. Returns 0 when P[gamma != 0] = 0.
double ConditionalTupleProbability(ExprPool* pool,
                                   const VariableTable& variables, ExprId phi,
                                   ExprId gamma,
                                   CompileOptions options = CompileOptions());

}  // namespace pvcdb

#endif  // PVCDB_ENGINE_SENSITIVITY_H_
