// Materialized probabilistic views with incremental (DBToaster-style)
// maintenance over pvc-tables.
//
// A MaterializedView caches a query's step I output (the result pvc-table)
// and maintains it under base-table deltas. The maintenance plan is chosen
// from the query's shape at registration:
//
//   kChain        Select/Rename chains over one base table (the same
//                 fragment the sharded engine distributes, cf.
//                 ShardDrivingTable): each base row maps to at most one
//                 output row in input order, so an insert evaluates the
//                 chain on the delta row alone and appends, and a delete
//                 drops the derived row.
//   kProjectChain Project over a kChain input: groups of duplicate
//                 projected tuples keep their member annotations (with
//                 base-row provenance); a delta touches exactly one group,
//                 whose annotation sum is re-formed from the member list.
//   kJoin         Select(Product(Scan, Scan), pred) with at least one
//                 hashable equi-key (the evaluator's hash-join fast path):
//                 both sides keep persistent hash indices, and a delta
//                 probes only the *other* side's cached index, splicing the
//                 new output rows into (left, right) provenance order.
//   kRecompute    everything else: the delta marks the view stale and the
//                 next access re-evaluates the query (the step II cache
//                 below still memoizes unchanged tuples across the
//                 recompute).
//
// Bit-identity: every maintained result equals a from-scratch
// re-evaluation of the query on the current base tables -- same tuples,
// same order, same annotation structure -- so the step II probabilities
// are bit-identical to an uncached engine as well. tests/ivm_test.cc
// asserts this after every mutation of random interleavings.
//
// Step II: each view owns a StepTwoCache (src/engine/delta.h) memoizing
// compiled d-trees and probabilities per result tuple, keyed by annotation
// expression, with targeted refresh on variable-probability updates.

#ifndef PVCDB_ENGINE_VIEW_H_
#define PVCDB_ENGINE_VIEW_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/engine/delta.h"
#include "src/query/ast.h"
#include "src/query/eval.h"
#include "src/table/pvc_table.h"

namespace pvcdb {

/// What a maintenance step needs from the owning engine.
struct ViewContext {
  ExprPool* pool;
  TableResolver resolve;
  EvalOptions eval_options;
};

/// Evaluates the per-row fragment `q` (a Select/Rename chain whose only
/// scan is `driving`) on the single row `row` of `schema`: the delta-row
/// pipeline shared by unsharded chain views and the sharded per-shard
/// views (which pass the provenance-extended schema). Returns nullopt
/// when the row is filtered out. Chains over base tables carry no
/// aggregation attributes, so this interns nothing and produces the same
/// output row a full evaluation would.
std::optional<Row> EvalChainOnSingleRow(ExprPool* pool, const Query& q,
                                        const std::string& driving,
                                        const Schema& schema, const Row& row,
                                        const EvalOptions& options);

/// One registered view: the query, its cached step I result, the
/// maintenance plan state, and the step II cache.
class MaterializedView {
 public:
  enum class PlanKind : uint8_t {
    kChain,
    kProjectChain,
    kJoin,
    kRecompute,
  };
  static const char* PlanName(PlanKind kind);

  /// Analyzes the plan and performs the initial full evaluation.
  MaterializedView(std::string name, QueryPtr query, const ViewContext& ctx);
  ~MaterializedView();  // Out of line: SideIndex is defined in view.cc.

  const std::string& name() const { return name_; }
  const QueryPtr& query() const { return query_; }
  PlanKind plan() const { return plan_; }
  bool stale() const { return stale_; }

  /// True when `table` is scanned anywhere in the query.
  bool References(const std::string& table) const;

  /// The cached result; re-evaluates first when the view is stale.
  const PvcTable& Table(const ViewContext& ctx);

  /// Cached per-row P[Phi != 0_S] of the result, in row order
  /// (bit-identical to Database::TupleProbabilities over Table()).
  std::vector<double> Probabilities(const VariableTable& variables,
                                    const CompileOptions& options,
                                    const ViewContext& ctx);

  /// Routes one base-table delta through the maintenance plan (or marks
  /// the view stale when the plan cannot absorb it incrementally).
  void Apply(const TableDelta& delta, const ViewContext& ctx);

  /// Variable-probability update: refreshes / drops affected step II
  /// entries. Step I state is unaffected (annotations are symbolic).
  void OnVariableUpdate(VarId var, const VariableTable& variables,
                        const Semiring& semiring, bool same_support);

  /// Drops the cached result (base table replaced wholesale).
  void Invalidate() { stale_ = true; }

  const StepTwoCache& step_two() const { return step_two_; }

 private:
  struct ProjectGroup {
    std::vector<Cell> key;
    /// (base row index, member annotation), ascending by row index.
    std::vector<std::pair<size_t, ExprId>> terms;
  };

  void AnalyzePlan(const ViewContext& ctx);
  void Rebuild(const ViewContext& ctx);

  /// Evaluates the per-row fragment `q` (the chain, or the projection's
  /// child) on a single base row; nullopt when the row is filtered out.
  std::optional<Row> EvalChainOnRow(const Query& q, const Row& row,
                                    const ViewContext& ctx) const;

  /// Builds the joined row for (left row, right row); nullopt when a
  /// residual atom filters it or the annotation folds to zero.
  std::optional<Row> EmitJoinRow(const Row& left, const Row& right,
                                 const ViewContext& ctx) const;

  void ApplyChain(const TableDelta& delta, const ViewContext& ctx);
  void ApplyProjectChain(const TableDelta& delta, const ViewContext& ctx);
  void ApplyJoin(const TableDelta& delta, const ViewContext& ctx);
  /// Re-forms result_ from groups_ (kProjectChain).
  void EmitProjected(const ViewContext& ctx);

  std::string name_;
  QueryPtr query_;
  PlanKind plan_ = PlanKind::kRecompute;
  bool stale_ = true;
  std::vector<std::string> base_tables_;
  PvcTable result_;

  // kChain / kProjectChain: the driving base table.
  std::string driving_;
  /// kChain: per output row, the driving-table row it derives from
  /// (strictly ascending).
  std::vector<size_t> chain_prov_;

  // kProjectChain.
  std::vector<size_t> project_indices_;  ///< Projected columns in the chain output.
  std::vector<ProjectGroup> groups_;  ///< Live groups, first-occurrence order.
  /// Key cells -> position in groups_ (O(1) insert-path lookup; rebuilt
  /// by ReindexGroups after structural delete-path changes).
  struct GroupIndex;
  std::unique_ptr<GroupIndex> group_index_;
  void ReindexGroups();

  // kJoin.
  std::string left_name_, right_name_;
  Schema join_schema_;
  EquiJoinPlan join_plan_;
  /// Per output row: (left row, right row), lexicographically ascending.
  std::vector<std::pair<uint32_t, uint32_t>> join_prov_;

  StepTwoCache step_two_;

  // Hash indices for the join sides (defined in view.cc to keep the cell
  // key hasher private).
  struct SideIndex;
  std::unique_ptr<SideIndex> left_index_;
  std::unique_ptr<SideIndex> right_index_;
};

/// The per-database registry: named views in registration order, fanning
/// deltas and variable updates to each.
class ViewRegistry {
 public:
  /// Registers (or replaces) `name`; evaluates the query eagerly and
  /// returns the result.
  const PvcTable& Register(const std::string& name, QueryPtr query,
                           const ViewContext& ctx);

  bool Has(const std::string& name) const;
  void Drop(const std::string& name);
  bool empty() const { return views_.empty(); }
  std::vector<std::string> Names() const;

  MaterializedView& view(const std::string& name);
  const MaterializedView& view(const std::string& name) const;

  const PvcTable& Table(const std::string& name, const ViewContext& ctx);
  std::vector<double> Probabilities(const std::string& name,
                                    const VariableTable& variables,
                                    const CompileOptions& options,
                                    const ViewContext& ctx);

  void Apply(const TableDelta& delta, const ViewContext& ctx);
  void OnVariableUpdate(VarId var, const VariableTable& variables,
                        const Semiring& semiring, bool same_support);
  /// `table` was replaced wholesale (AddTable): invalidate referencing
  /// views.
  void OnTableReplaced(const std::string& table);

 private:
  std::vector<std::unique_ptr<MaterializedView>> views_;
};

}  // namespace pvcdb

#endif  // PVCDB_ENGINE_VIEW_H_
