// Delta processing for the IVM subsystem (src/engine/view.h): typed table
// deltas, the shared step II result cache, and the per-row compile +
// probability pipeline both engine facades build on.
//
// The design follows DBToaster-style view maintenance split along the
// paper's two steps:
//
//   step I  -- a mutation to a base pvc-table is a TableDelta; materialized
//              views apply it incrementally where their plan allows
//              (see MaterializedView) and fall back to recompute otherwise.
//   step II -- per-tuple d-trees and probabilities are memoized in a
//              StepTwoCache keyed by the tuple's annotation expression
//              (hash-consing makes the ExprId a perfect structural key), so
//              an insert only compiles the new tuples' annotations, and a
//              variable-probability update re-runs only the bottom-up
//              probability pass of cached d-trees that mention the updated
//              VarId (found through the cache's var -> annotation inverted
//              index).
//
// Everything here preserves the engine's bit-identity contract: a cached
// probability is the output of exactly the per-row pipeline
// (IsolatedCompileAndDistribution) an uncached batch pass would run, and a
// refreshed-after-update probability re-runs the pass on a d-tree that a
// fresh compile would reproduce node for node (compilation branches only on
// variable *support*, which a probability update within the same support
// does not change; support changes drop the entry instead).

#ifndef PVCDB_ENGINE_DELTA_H_
#define PVCDB_ENGINE_DELTA_H_

#include <cstdint>
#include <functional>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/dtree/compile.h"
#include "src/dtree/dtree.h"
#include "src/dtree/probability.h"
#include "src/expr/expr.h"
#include "src/prob/variable.h"
#include "src/query/eval.h"
#include "src/table/pvc_table.h"

namespace pvcdb {

/// Kind of a base-table mutation.
enum class DeltaKind : uint8_t { kInsert, kDelete };

/// One base-table mutation, routed to every registered view. Probability
/// updates are not TableDeltas -- they leave step I untouched (annotations
/// are symbolic) and flow through StepTwoCache::OnVariableUpdate instead.
struct TableDelta {
  DeltaKind kind = DeltaKind::kInsert;
  std::string table;
  /// Insert: index of the appended row (== NumRows - 1 after the append).
  /// Delete: index the removed row had; later rows shifted down by one.
  size_t row_index = 0;
  /// The inserted / removed row's data cells.
  std::vector<Cell> cells;
  /// Insert only: the new row's annotation in the owning pool.
  ExprId annotation = kInvalidExpr;
};

/// A compiled per-tuple step II result: the d-tree (valid independently of
/// the task-private pool it was compiled in -- it references only VarIds)
/// and its probability distribution.
struct CompiledDistribution {
  DTree tree;
  Distribution distribution;
};

/// The per-row step II pipeline behind every probability pass and cache
/// fill: clone the annotation from `source` into a task-private pool,
/// compile it, run the bottom-up probability pass. `source` is only read,
/// so concurrent calls against one pool are safe. `intra_tree_threads`
/// fans the probability pass across subtrees of this one d-tree
/// (EvalOptions::intra_tree_threads; bit-identical to serial, and
/// automatically serial when the caller already runs inside a parallel
/// batch).
CompiledDistribution IsolatedCompileAndDistribution(
    const ExprPool& source, const VariableTable& variables, ExprId annotation,
    const CompileOptions& options, int intra_tree_threads = 0);

/// True when both distributions have the same support (value sets); the
/// condition under which a cached d-tree survives a distribution update.
bool SameSupport(const Distribution& a, const Distribution& b);

/// The shared delete-by-key scan of Database::DeleteTuple and
/// ShardedDatabase::DeleteTuple: invokes `delete_at` for every row of
/// `table` whose first-column cell equals `key`, in descending index
/// order (so earlier hit indices stay valid across the deletes). Returns
/// the number of rows deleted.
size_t DeleteRowsMatchingKey(const PvcTable& table, const Cell& key,
                             const std::function<void(size_t)>& delete_at);

/// Memo of per-tuple step II results for one expression pool, keyed by
/// annotation ExprId, with a var -> annotations inverted index for targeted
/// refresh on probability updates and an LRU recency list for bounded
/// operation. Not thread-safe; the owning facade serializes mutations, and
/// batch fills fan only the pure per-row pipeline across threads.
class StepTwoCache {
 public:
  struct Stats {
    size_t hits = 0;       ///< Rows answered from the cache.
    size_t misses = 0;     ///< Rows that compiled a new d-tree.
    size_t refreshed = 0;  ///< Entries re-evaluated after a var update.
    size_t dropped = 0;    ///< Entries dropped (support change).
    size_t pruned = 0;     ///< Dead entries evicted (insert/delete churn).
    size_t evicted = 0;    ///< Entries evicted by the LRU capacity bound.
  };

  /// P[Phi != 0_S] for every row of `table`, in row order: cached entries
  /// answer directly, misses run the per-row pipeline fanned across up to
  /// `eval_options.num_threads` threads (each row's probability pass using
  /// `eval_options.intra_tree_threads`) and are memoized. Bit-identical to
  /// an uncached batch pass at any thread count. When insert/delete churn
  /// has grown the cache well past the live row count, dead entries
  /// (annotations no row references any more) are evicted first, bounding
  /// the cache by O(live rows) across any mutation history; on top of
  /// that, `eval_options.step_two_cache_capacity` (when non-zero) bounds
  /// the cache absolutely, evicting least-recently-used entries.
  std::vector<double> Probabilities(const ExprPool& pool,
                                    const VariableTable& variables,
                                    const PvcTable& table,
                                    const CompileOptions& options,
                                    const EvalOptions& eval_options);

  /// A variable's distribution changed. With `same_support`, every cached
  /// entry mentioning `var` re-runs the bottom-up probability pass on its
  /// stored d-tree (the tree a fresh compile would rebuild); otherwise
  /// those entries are dropped and recompile lazily on next access.
  void OnVariableUpdate(VarId var, const VariableTable& variables,
                        const Semiring& semiring, bool same_support);

  void Clear();
  size_t size() const { return entries_.size(); }
  /// Number of distinct annotations of `table`'s current rows with a cache
  /// entry. Unlike size(), this excludes dead entries left behind by
  /// deleted rows, so the count is a deterministic function of the current
  /// state (the "N cached d-trees" diagnostic), not of print history.
  size_t LiveEntries(const PvcTable& table) const;
  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    CompiledDistribution compiled;
    double probability = 0.0;
    /// Position in lru_ (front = most recently used).
    std::list<ExprId>::iterator lru_it;
  };

  /// Moves `it`'s entry to the front of the recency list.
  void Touch(Entry* entry);
  /// Erases an entry and its recency node (var_index_ lists keep stale
  /// ids; they miss harmlessly on lookup, exactly like the drop path).
  void Erase(std::unordered_map<ExprId, Entry>::iterator it);
  /// Applies the LRU capacity bound (0 = unbounded).
  void EnforceCapacity(size_t capacity);

  std::unordered_map<ExprId, Entry> entries_;
  /// Inverted index: var -> annotations of cached entries mentioning it.
  std::unordered_map<VarId, std::vector<ExprId>> var_index_;
  /// Recency order of entries_ keys, most recent first.
  std::list<ExprId> lru_;
  Stats stats_;
};

}  // namespace pvcdb

#endif  // PVCDB_ENGINE_DELTA_H_
