#include "src/engine/wal.h"

#include <utility>

#include "src/query/serialize.h"
#include "src/util/check.h"
#include "src/util/codec.h"
#include "src/util/crc32c.h"
#include "src/util/metrics.h"

namespace pvcdb {
namespace {

constexpr char kWalMagic[] = "PVCWAL01";
constexpr size_t kMagicSize = 8;
constexpr size_t kRecordHeaderSize = 8;  // u32 payload_len + u32 crc.

// Schema/distribution codecs live in src/query/serialize.h, shared with
// the serving wire protocol (src/net/protocol.h).

void EncodeOp(std::string* out, const WalOp& op) {
  EncodeU8(out, static_cast<uint8_t>(op.type));
  switch (op.type) {
    case WalOpType::kRegisterVariable:
      EncodeString(out, op.name);
      EncodeDistribution(out, op.distribution);
      return;
    case WalOpType::kCreateTable: {
      PVC_CHECK_MSG(op.rows.size() == op.vars.size(),
                    "kCreateTable needs one variable per row");
      EncodeString(out, op.name);
      EncodeString(out, op.key_column);
      EncodeSchema(out, op.schema);
      EncodeU64(out, op.rows.size());
      for (size_t i = 0; i < op.rows.size(); ++i) {
        PVC_CHECK_MSG(op.rows[i].size() == op.schema.NumColumns(),
                      "kCreateTable row arity mismatch");
        for (const Cell& cell : op.rows[i]) EncodeCell(out, cell);
        EncodeU32(out, op.vars[i]);
      }
      return;
    }
    case WalOpType::kInsertRow:
      EncodeString(out, op.name);
      EncodeU32(out, static_cast<uint32_t>(op.cells.size()));
      for (const Cell& cell : op.cells) EncodeCell(out, cell);
      EncodeU32(out, op.var);
      return;
    case WalOpType::kDeleteRow:
      EncodeString(out, op.name);
      EncodeU64(out, op.row_index);
      return;
    case WalOpType::kUpdateProbability:
      EncodeU32(out, op.var);
      EncodeDouble(out, op.probability);
      return;
    case WalOpType::kRegisterView:
      PVC_CHECK_MSG(op.query != nullptr, "kRegisterView needs a query");
      EncodeString(out, op.name);
      EncodeQuery(out, *op.query);
      return;
    case WalOpType::kDropView:
      EncodeString(out, op.name);
      return;
    case WalOpType::kReshard:
      EncodeU64(out, op.num_shards);
      return;
  }
  PVC_FAIL("unknown WAL op type");
}

bool DecodeOp(ByteReader* reader, WalOp* op) {
  uint8_t type = reader->ReadU8();
  if (!reader->ok()) return false;
  if (type < static_cast<uint8_t>(WalOpType::kRegisterVariable) ||
      type > static_cast<uint8_t>(WalOpType::kReshard)) {
    reader->Fail();
    return false;
  }
  op->type = static_cast<WalOpType>(type);
  switch (op->type) {
    case WalOpType::kRegisterVariable:
      op->name = reader->ReadString();
      op->distribution = DecodeDistribution(reader);
      break;
    case WalOpType::kCreateTable: {
      op->name = reader->ReadString();
      op->key_column = reader->ReadString();
      op->schema = DecodeSchema(reader);
      uint64_t n = reader->ReadU64();
      if (n > reader->remaining()) {
        reader->Fail();
        return false;
      }
      op->rows.clear();
      op->vars.clear();
      op->rows.reserve(n);
      op->vars.reserve(n);
      for (uint64_t i = 0; i < n && reader->ok(); ++i) {
        std::vector<Cell> row;
        row.reserve(op->schema.NumColumns());
        for (size_t c = 0; c < op->schema.NumColumns(); ++c) {
          row.push_back(DecodeCell(reader));
        }
        op->rows.push_back(std::move(row));
        op->vars.push_back(reader->ReadU32());
      }
      break;
    }
    case WalOpType::kInsertRow: {
      op->name = reader->ReadString();
      uint32_t n = reader->ReadU32();
      if (n > reader->remaining()) {
        reader->Fail();
        return false;
      }
      op->cells.clear();
      op->cells.reserve(n);
      for (uint32_t i = 0; i < n; ++i) op->cells.push_back(DecodeCell(reader));
      op->var = reader->ReadU32();
      break;
    }
    case WalOpType::kDeleteRow:
      op->name = reader->ReadString();
      op->row_index = reader->ReadU64();
      break;
    case WalOpType::kUpdateProbability:
      op->var = reader->ReadU32();
      op->probability = reader->ReadDouble();
      break;
    case WalOpType::kRegisterView:
      op->name = reader->ReadString();
      op->query = DecodeQuery(reader);
      if (op->query == nullptr) return false;
      break;
    case WalOpType::kDropView:
      op->name = reader->ReadString();
      break;
    case WalOpType::kReshard:
      op->num_shards = reader->ReadU64();
      break;
  }
  return reader->ok();
}

}  // namespace

WalOp WalOp::RegisterVariable(std::string name, Distribution distribution) {
  WalOp op;
  op.type = WalOpType::kRegisterVariable;
  op.name = std::move(name);
  op.distribution = std::move(distribution);
  return op;
}

WalOp WalOp::CreateTable(std::string name, Schema schema,
                         std::string key_column,
                         std::vector<std::vector<Cell>> rows,
                         std::vector<VarId> vars) {
  WalOp op;
  op.type = WalOpType::kCreateTable;
  op.name = std::move(name);
  op.schema = std::move(schema);
  op.key_column = std::move(key_column);
  op.rows = std::move(rows);
  op.vars = std::move(vars);
  return op;
}

WalOp WalOp::InsertRow(std::string table, std::vector<Cell> cells, VarId var) {
  WalOp op;
  op.type = WalOpType::kInsertRow;
  op.name = std::move(table);
  op.cells = std::move(cells);
  op.var = var;
  return op;
}

WalOp WalOp::DeleteRow(std::string table, uint64_t row_index) {
  WalOp op;
  op.type = WalOpType::kDeleteRow;
  op.name = std::move(table);
  op.row_index = row_index;
  return op;
}

WalOp WalOp::UpdateProbability(VarId var, double probability) {
  WalOp op;
  op.type = WalOpType::kUpdateProbability;
  op.var = var;
  op.probability = probability;
  return op;
}

WalOp WalOp::RegisterView(std::string name, QueryPtr query) {
  WalOp op;
  op.type = WalOpType::kRegisterView;
  op.name = std::move(name);
  op.query = std::move(query);
  return op;
}

WalOp WalOp::DropView(std::string name) {
  WalOp op;
  op.type = WalOpType::kDropView;
  op.name = std::move(name);
  return op;
}

WalOp WalOp::Reshard(uint64_t num_shards) {
  WalOp op;
  op.type = WalOpType::kReshard;
  op.num_shards = num_shards;
  return op;
}

std::string EncodeWalOps(const std::vector<WalOp>& ops) {
  std::string payload;
  for (const WalOp& op : ops) EncodeOp(&payload, op);
  return payload;
}

bool DecodeWalOps(const std::string& payload, std::vector<WalOp>* ops) {
  ops->clear();
  ByteReader reader(payload);
  while (reader.ok() && !reader.AtEnd()) {
    WalOp op;
    if (!DecodeOp(&reader, &op)) return false;
    ops->push_back(std::move(op));
  }
  return reader.ok();
}

WalWriter::WalWriter(std::unique_ptr<WritableFile> file, std::string path,
                     bool sync, uint64_t bytes, uint64_t records)
    : file_(std::move(file)),
      path_(std::move(path)),
      sync_(sync),
      bytes_(bytes),
      records_(records) {}

std::unique_ptr<WalWriter> WalWriter::Open(FileSystem* fs,
                                           const std::string& path,
                                           uint64_t existing_bytes,
                                           uint64_t existing_records,
                                           bool sync, std::string* error) {
  std::unique_ptr<WritableFile> file = fs->OpenForAppend(path, error);
  if (file == nullptr) return nullptr;
  uint64_t bytes = existing_bytes;
  if (existing_bytes == 0) {
    if (!file->Append(kWalMagic, kMagicSize) || (sync && !file->Sync())) {
      if (error != nullptr) *error = "cannot write WAL header to " + path;
      return nullptr;
    }
    bytes = kMagicSize;
  }
  return std::unique_ptr<WalWriter>(new WalWriter(
      std::move(file), path, sync, bytes, existing_records));
}

bool WalWriter::Append(const WalRecord& record) {
  std::string payload = EncodeWalOps(record.ops);
  std::string buffer;
  buffer.reserve(kRecordHeaderSize + payload.size());
  EncodeU32(&buffer, static_cast<uint32_t>(payload.size()));
  EncodeU32(&buffer, Crc32c(payload));
  buffer.append(payload);
  if (!file_->Append(buffer.data(), buffer.size())) return false;
  PVCDB_COUNTER_ADD("wal.appends", 1);
  PVCDB_COUNTER_ADD("wal.append_bytes", buffer.size());
  if (sync_) {
    if (!file_->Sync()) return false;
    PVCDB_COUNTER_ADD("wal.fsyncs", 1);
    PVCDB_HIST_OBSERVE_IN("wal.group_commit_batch",
                          Histogram::CountBuckets(), 1.0);
  } else {
    ++unsynced_appends_;
  }
  bytes_ += buffer.size();
  records_ += 1;
  return true;
}

bool WalWriter::Sync() {
  if (unsynced_appends_ == 0) return true;
  if (!file_->Sync()) return false;
  PVCDB_COUNTER_ADD("wal.fsyncs", 1);
  PVCDB_HIST_OBSERVE_IN("wal.group_commit_batch", Histogram::CountBuckets(),
                        static_cast<double>(unsynced_appends_));
  unsynced_appends_ = 0;
  return true;
}

void LogWalRecord(WalWriter* wal, const WalRecord& record) {
  PVC_CHECK_MSG(wal->Append(record),
                "WAL append to '" << wal->path()
                                  << "' failed; the engine must be "
                                     "recovered before further mutations");
}

WalReadResult ReadWal(FileSystem* fs, const std::string& path) {
  WalReadResult result;
  if (!fs->FileExists(path)) return result;
  result.file_exists = true;
  std::string data;
  if (!fs->ReadFile(path, &data, &result.error)) return result;
  result.file_bytes = data.size();
  if (data.size() < kMagicSize ||
      data.compare(0, kMagicSize, kWalMagic, kMagicSize) != 0) {
    // The magic itself was torn (a crash while creating the log): the whole
    // file is debris.
    result.torn_tail = data.size() > 0;
    return result;
  }
  result.magic_valid = true;
  size_t pos = kMagicSize;
  while (pos + kRecordHeaderSize <= data.size()) {
    ByteReader header(data.data() + pos, kRecordHeaderSize);
    uint32_t payload_len = header.ReadU32();
    uint32_t crc = header.ReadU32();
    // Every real record has ops; an all-zero header is write debris.
    if (payload_len == 0) break;
    if (payload_len > data.size() - pos - kRecordHeaderSize) break;
    std::string payload =
        data.substr(pos + kRecordHeaderSize, payload_len);
    if (Crc32c(payload) != crc) break;
    WalRecord record;
    if (!DecodeWalOps(payload, &record.ops)) break;
    result.records.push_back(std::move(record));
    pos += kRecordHeaderSize + payload_len;
  }
  result.valid_bytes = pos;
  result.torn_tail = pos < data.size();
  return result;
}

}  // namespace pvcdb
