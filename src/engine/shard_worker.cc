#include "src/engine/shard_worker.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "src/engine/shard.h"
#include "src/engine/view.h"
#include "src/net/frame.h"
#include "src/util/check.h"
#include "src/util/codec.h"
#include "src/util/crc32c.h"
#include "src/util/metrics.h"

namespace pvcdb {

ShardWorker::ShardWorker(const HelloMsg& hello)
    : db_(std::make_unique<Database>(hello.semiring)),
      semiring_(hello.semiring),
      shard_index_(hello.shard_index),
      num_shards_(hello.num_shards) {}

bool ShardWorker::IsLoggedMutation(MsgKind kind) {
  switch (kind) {
    case MsgKind::kSyncVars:
    case MsgKind::kUpdateVar:
    case MsgKind::kLoadPartition:
    case MsgKind::kAppendRow:
    case MsgKind::kDeleteRow:
    case MsgKind::kRegisterChainView:
    case MsgKind::kDropChainView:
      return true;
    default:
      return false;
  }
}

uint32_t ShardWorker::NextChain(uint32_t chain, MsgKind kind,
                                const std::string& payload) {
  // Chain over a fixed-size digest instead of the raw payload so the cost
  // per entry is one extra CRC over 9 bytes; the payload digest itself
  // already pins every byte.
  std::string link;
  EncodeU32(&link, chain);
  EncodeU32(&link, Crc32c(payload));
  EncodeU8(&link, static_cast<uint8_t>(kind));
  return Crc32c(link);
}

void ShardWorker::ResetState() {
  db_ = std::make_unique<Database>(semiring_);
  tables_.clear();
  views_.clear();
  lsn_ = 0;
  chain_ = 0;
}

bool ShardWorker::MatchesHello(const HelloMsg& hello) const {
  return hello.semiring == semiring_ && hello.shard_index == shard_index_ &&
         hello.num_shards == num_shards_;
}

ShardWorker::TableState& ShardWorker::StateOf(const std::string& table) {
  auto it = tables_.find(table);
  PVC_CHECK_MSG(it != tables_.end(),
                "worker " << shard_index_ << " has no partition of '"
                          << table << "'");
  return it->second;
}

void ShardWorker::HandleSyncVars(const SyncVarsMsg& msg) {
  // Variables are append-only and replayed in Add order; ids line up with
  // the coordinator's exactly when the runs arrive contiguously.
  PVC_CHECK_MSG(msg.first_id == db_->variables().size(),
                "variable sync gap: worker has " << db_->variables().size()
                                                 << " variables, run starts at "
                                                 << msg.first_id);
  for (const VarSyncEntry& entry : msg.entries) {
    db_->variables().Add(entry.distribution, entry.name);
  }
}

void ShardWorker::HandleUpdateVar(const UpdateVarMsg& msg) {
  PVC_CHECK_MSG(msg.var < db_->variables().size(),
                "unknown variable id " << msg.var);
  // The same refresh-or-drop decision ShardedDatabase::UpdateProbability
  // makes for its per-shard view caches.
  bool same_support = SameSupport(db_->variables().DistributionOf(msg.var),
                                  Distribution::Bernoulli(msg.probability));
  db_->UpdateProbability(msg.var, msg.probability);
  const Semiring& semiring = db_->pool().semiring();
  for (auto& view : views_) {
    view->cache.OnVariableUpdate(msg.var, db_->variables(), semiring,
                                 same_support);
  }
}

uint64_t ShardWorker::HandleLoadPartition(const LoadPartitionMsg& msg) {
  PVC_CHECK_MSG(msg.rows.size() == msg.vars.size() &&
                    msg.rows.size() == msg.global_rows.size(),
                "partition rows/vars/global_rows disagree");
  // Mirror PartitionLoadedTable's shard half: re-intern each row's shared
  // variable into this worker's pool.
  PvcTable part{msg.schema};
  for (size_t i = 0; i < msg.rows.size(); ++i) {
    PVC_CHECK_MSG(msg.vars[i] < db_->variables().size(),
                  "partition row references unsynced variable "
                      << msg.vars[i]);
    part.AddRow(msg.rows[i], db_->pool().Var(msg.vars[i]));
  }
  db_->AddTable(msg.table, std::move(part));
  TableState& state = tables_[msg.table];
  state.global.assign(msg.global_rows.begin(), msg.global_rows.end());
  state.augmented_valid = false;
  for (auto& view : views_) {
    if (view->driving == msg.table) SeedView(view.get());
  }
  return msg.rows.size();
}

void ShardWorker::HandleAppendRow(const AppendRowMsg& msg) {
  TableState& state = StateOf(msg.table);
  PVC_CHECK_MSG(msg.var < db_->variables().size(),
                "append references unsynced variable " << msg.var);
  ExprId annotation = db_->pool().Var(msg.var);
  db_->AppendRowToTable(msg.table, msg.cells, annotation);
  state.global.push_back(static_cast<int64_t>(msg.global_row));
  // Appends carry the maximal global id, so the cached provenance-extended
  // partition extends in place (same as RouteAppendedRow).
  if (state.augmented_valid) {
    std::vector<Cell> extended = msg.cells;
    extended.emplace_back(static_cast<int64_t>(msg.global_row));
    state.augmented.AddRow(std::move(extended), annotation);
  }
  for (auto& view : views_) {
    if (view->driving == msg.table) {
      ApplyViewInsert(view.get(), static_cast<int64_t>(msg.global_row),
                      msg.cells, annotation);
    }
  }
}

void ShardWorker::HandleDeleteRow(const DeleteRowMsg& msg) {
  TableState& state = StateOf(msg.table);
  int64_t g = static_cast<int64_t>(msg.global_row);
  if (msg.has_local_row) {
    PVC_CHECK_MSG(msg.local_row < state.global.size(),
                  "delete of out-of-range local row " << msg.local_row);
    PVC_CHECK_MSG(state.global[msg.local_row] == g,
                  "delete provenance mismatch at local row "
                      << msg.local_row);
    db_->DeleteRowAt(msg.table, msg.local_row);
    state.global.erase(state.global.begin() +
                       static_cast<ptrdiff_t>(msg.local_row));
  }
  // Every worker shifts ids above the deleted global row -- the broadcast
  // half of ShardedDatabase::DeleteRowAt.
  for (int64_t& id : state.global) {
    if (id > g) --id;
  }
  state.augmented_valid = false;
  for (auto& view : views_) {
    if (view->driving == msg.table) ApplyViewDelete(view.get(), g);
  }
}

const PvcTable& ShardWorker::AugmentedPartition(const std::string& table) {
  TableState& state = StateOf(table);
  if (state.augmented_valid) return state.augmented;
  const PvcTable& partition = db_->table(table);
  PVC_CHECK_MSG(partition.NumRows() == state.global.size(),
                "partition and provenance sizes disagree for '" << table
                                                                << "'");
  std::vector<Column> columns = partition.schema().columns();
  columns.push_back({kShardRowIdColumn, CellType::kInt});
  PvcTable augmented{Schema(std::move(columns))};
  for (size_t j = 0; j < partition.NumRows(); ++j) {
    std::vector<Cell> cells = partition.row(j).cells;
    cells.emplace_back(state.global[j]);
    augmented.AddRow(std::move(cells), partition.row(j).annotation);
  }
  state.augmented = std::move(augmented);
  state.augmented_valid = true;
  return state.augmented;
}

void ShardWorker::EvalChainParts(const Query& q, const std::string& table,
                                 Schema* schema, PvcTable* part,
                                 std::vector<int64_t>* global) {
  const PvcTable& augmented = AugmentedPartition(table);
  QueryEvaluator evaluator(
      &db_->pool(),
      [&](const std::string& name) -> const PvcTable& {
        if (name == table) return augmented;
        return db_->table(name);
      },
      EvalMode::kProbabilistic, db_->eval_options());
  PvcTable result = [&] {
    PVCDB_SPAN(step1_span, "step1");
    return evaluator.Eval(q);
  }();

  size_t rowid_index = result.schema().IndexOf(kShardRowIdColumn);
  std::vector<Column> out_columns = result.schema().columns();
  out_columns.erase(out_columns.begin() + static_cast<ptrdiff_t>(rowid_index));
  *schema = Schema{std::move(out_columns)};
  PvcTable stripped{*schema};
  global->clear();
  for (size_t j = 0; j < result.NumRows(); ++j) {
    const Row& r = result.row(j);
    global->push_back(r.cells[rowid_index].AsInt());
    std::vector<Cell> cells = r.cells;
    cells.erase(cells.begin() + static_cast<ptrdiff_t>(rowid_index));
    stripped.AddRow(std::move(cells), r.annotation);
  }
  *part = std::move(stripped);
}

ChainResultMsg ShardWorker::HandleEvalChain(const EvalChainMsg& msg) {
  Schema schema;
  PvcTable part{Schema{}};
  std::vector<int64_t> global;
  EvalChainParts(*msg.query, msg.table, &schema, &part, &global);

  // Step II per surviving row: the shared pipeline, so the probability is
  // independent of this worker's pool history (bit-identity with the
  // in-process scatter).
  VariableTable::EvalScope scope(db_->variables());
  ChainResultMsg reply;
  reply.schema = schema;
  reply.rows.reserve(part.NumRows());
  const CompileOptions& compile_options = db_->compile_options();
  int intra_tree = db_->eval_options().intra_tree_threads;
  for (size_t j = 0; j < part.NumRows(); ++j) {
    const Row& r = part.row(j);
    const ExprNode& node = db_->pool().node(r.annotation);
    PVC_CHECK_MSG(node.kind == ExprKind::kVar,
                  "distributable chain produced a non-variable annotation");
    ChainRow row;
    row.global_row = static_cast<uint64_t>(global[j]);
    row.cells = r.cells;
    row.var = node.var();
    Distribution d = IsolatedAnnotationDistribution(
        db_->pool(), db_->variables(), r.annotation, compile_options,
        intra_tree);
    row.probability = NonZeroMass(d);
    if (msg.want_distributions) row.distribution = std::move(d);
    reply.rows.push_back(std::move(row));
  }
  return reply;
}

ProbsResultMsg ShardWorker::HandleTableProbs(const TableProbsMsg& msg) {
  TableState& state = StateOf(msg.table);
  const PvcTable& partition = db_->table(msg.table);
  VariableTable::EvalScope scope(db_->variables());
  ProbsResultMsg reply;
  reply.rows.reserve(partition.NumRows());
  const CompileOptions& compile_options = db_->compile_options();
  int intra_tree = db_->eval_options().intra_tree_threads;
  for (size_t j = 0; j < partition.NumRows(); ++j) {
    ProbRow row;
    row.global_row = static_cast<uint64_t>(state.global[j]);
    Distribution d = IsolatedAnnotationDistribution(
        db_->pool(), db_->variables(), partition.row(j).annotation,
        compile_options, intra_tree);
    row.probability = NonZeroMass(d);
    if (msg.want_distributions) row.distribution = std::move(d);
    reply.rows.push_back(std::move(row));
  }
  return reply;
}

ShardWorker::WorkerView* ShardWorker::FindView(const std::string& name) {
  for (auto& view : views_) {
    if (view->name == name) return view.get();
  }
  return nullptr;
}

void ShardWorker::SeedView(WorkerView* view) {
  EvalChainParts(*view->query, view->driving, &view->schema, &view->part,
                 &view->global);
  view->cache.Clear();
}

uint64_t ShardWorker::HandleRegisterChainView(RegisterChainViewMsg msg) {
  auto view = std::make_unique<WorkerView>();
  view->name = msg.name;
  view->driving = msg.table;
  view->query = std::move(msg.query);
  SeedView(view.get());
  uint64_t rows = view->part.NumRows();
  // Build-then-replace, like ShardedDatabase::RegisterView: a failed seed
  // above leaves any existing view of the name untouched.
  for (auto it = views_.begin(); it != views_.end(); ++it) {
    if ((*it)->name == view->name) {
      *it = std::move(view);
      return rows;
    }
  }
  views_.push_back(std::move(view));
  return rows;
}

void ShardWorker::ApplyViewInsert(WorkerView* view, int64_t global_row,
                                  const std::vector<Cell>& cells,
                                  ExprId annotation) {
  // The delta-row pipeline of ShardedDatabase::ApplyShardedViewInsert.
  const PvcTable& partition = db_->table(view->driving);
  std::vector<Column> columns = partition.schema().columns();
  columns.push_back({kShardRowIdColumn, CellType::kInt});
  Schema augmented{std::move(columns)};
  Row delta_row;
  delta_row.cells = cells;
  delta_row.cells.emplace_back(global_row);
  delta_row.annotation = annotation;
  std::optional<Row> out =
      EvalChainOnSingleRow(&db_->pool(), *view->query, view->driving,
                           augmented, delta_row, db_->eval_options());
  if (!out.has_value()) return;
  size_t rowid_index = partition.schema().NumColumns();
  PVC_CHECK_MSG(out->cells.size() == view->schema.NumColumns() + 1,
                "chain output arity does not match the view schema");
  out->cells.erase(out->cells.begin() + static_cast<ptrdiff_t>(rowid_index));
  view->part.AddRow(std::move(*out));
  view->global.push_back(global_row);
}

void ShardWorker::ApplyViewDelete(WorkerView* view, int64_t global_row) {
  // This shard's half of ApplyShardedViewDelete: drop the derived row if
  // this partition holds it, then shift later driving-row ids.
  auto pos = std::lower_bound(view->global.begin(), view->global.end(),
                              global_row);
  if (pos != view->global.end() && *pos == global_row) {
    size_t r = static_cast<size_t>(pos - view->global.begin());
    view->part.DeleteRow(r);
    view->global.erase(pos);
  }
  for (int64_t& id : view->global) {
    if (id > global_row) --id;
  }
}

ChainResultMsg ShardWorker::HandleViewProbs(const std::string& name) {
  WorkerView* view = FindView(name);
  PVC_CHECK_MSG(view != nullptr,
                "worker " << shard_index_ << " has no view '" << name << "'");
  VariableTable::EvalScope scope(db_->variables());
  // The cached per-shard pass of ShardedDatabase::ViewProbabilities.
  std::vector<double> probs =
      view->cache.Probabilities(db_->pool(), db_->variables(), view->part,
                                db_->compile_options(), db_->eval_options());
  ChainResultMsg reply;
  reply.schema = view->schema;
  reply.rows.reserve(view->part.NumRows());
  for (size_t j = 0; j < view->part.NumRows(); ++j) {
    const Row& r = view->part.row(j);
    const ExprNode& node = db_->pool().node(r.annotation);
    ChainRow row;
    row.global_row = static_cast<uint64_t>(view->global[j]);
    row.cells = r.cells;
    row.var = node.kind == ExprKind::kVar ? node.var() : 0;
    row.probability = probs[j];
    reply.rows.push_back(std::move(row));
  }
  return reply;
}

ViewInfoMsg ShardWorker::HandleViewInfo(const std::string& name) {
  WorkerView* view = FindView(name);
  PVC_CHECK_MSG(view != nullptr,
                "worker " << shard_index_ << " has no view '" << name << "'");
  ViewInfoMsg info;
  info.rows = view->part.NumRows();
  info.cache_entries = view->cache.LiveEntries(view->part);
  return info;
}

bool ShardWorker::Handle(MsgKind kind, const std::string& payload,
                         MsgKind* reply_kind, std::string* reply_payload) {
  auto error = [&](const std::string& text) {
    ErrorMsg msg;
    msg.text = text;
    *reply_kind = MsgKind::kError;
    *reply_payload = msg.Encode();
  };
  auto ok = [&](uint64_t value) {
    OkMsg msg;
    msg.value = value;
    *reply_kind = MsgKind::kOk;
    *reply_payload = msg.Encode();
  };
  // Called exactly once per successfully applied logged mutation, before
  // the reply is built: the worker-side half of the kTailInfo contract.
  auto applied = [&] {
    ++lsn_;
    chain_ = NextChain(chain_, kind, payload);
  };
  PVCDB_COUNTER_ADD("worker.requests", 1);
  try {
    switch (kind) {
      case MsgKind::kSyncVars: {
        SyncVarsMsg msg;
        if (!SyncVarsMsg::Decode(payload, &msg)) break;
        HandleSyncVars(msg);
        applied();
        ok(db_->variables().size());
        return true;
      }
      case MsgKind::kUpdateVar: {
        UpdateVarMsg msg;
        if (!UpdateVarMsg::Decode(payload, &msg)) break;
        HandleUpdateVar(msg);
        applied();
        ok(0);
        return true;
      }
      case MsgKind::kLoadPartition: {
        LoadPartitionMsg msg;
        if (!LoadPartitionMsg::Decode(payload, &msg)) break;
        uint64_t rows = HandleLoadPartition(msg);
        applied();
        ok(rows);
        return true;
      }
      case MsgKind::kAppendRow: {
        AppendRowMsg msg;
        if (!AppendRowMsg::Decode(payload, &msg)) break;
        HandleAppendRow(msg);
        applied();
        ok(0);
        return true;
      }
      case MsgKind::kDeleteRow: {
        DeleteRowMsg msg;
        if (!DeleteRowMsg::Decode(payload, &msg)) break;
        HandleDeleteRow(msg);
        applied();
        ok(0);
        return true;
      }
      case MsgKind::kEvalChain: {
        EvalChainMsg msg;
        if (!EvalChainMsg::Decode(payload, &msg)) break;
        *reply_kind = MsgKind::kChainResult;
        *reply_payload = HandleEvalChain(msg).Encode();
        return true;
      }
      case MsgKind::kTableProbs: {
        TableProbsMsg msg;
        if (!TableProbsMsg::Decode(payload, &msg)) break;
        *reply_kind = MsgKind::kProbsResult;
        *reply_payload = HandleTableProbs(msg).Encode();
        return true;
      }
      case MsgKind::kRegisterChainView: {
        RegisterChainViewMsg msg;
        if (!RegisterChainViewMsg::Decode(payload, &msg)) break;
        uint64_t rows = HandleRegisterChainView(std::move(msg));
        applied();
        ok(rows);
        return true;
      }
      case MsgKind::kDropChainView: {
        NameMsg msg;
        if (!NameMsg::Decode(payload, &msg)) break;
        for (auto it = views_.begin(); it != views_.end(); ++it) {
          if ((*it)->name == msg.name) {
            views_.erase(it);
            break;
          }
        }
        applied();
        ok(0);
        return true;
      }
      case MsgKind::kViewProbs: {
        NameMsg msg;
        if (!NameMsg::Decode(payload, &msg)) break;
        *reply_kind = MsgKind::kChainResult;
        *reply_payload = HandleViewProbs(msg.name).Encode();
        return true;
      }
      case MsgKind::kViewInfo: {
        NameMsg msg;
        if (!NameMsg::Decode(payload, &msg)) break;
        *reply_kind = MsgKind::kViewInfoResult;
        *reply_payload = HandleViewInfo(msg.name).Encode();
        return true;
      }
      case MsgKind::kSetOptions: {
        EvalOptionsMsg msg;
        if (!EvalOptionsMsg::Decode(payload, &msg)) break;
        // Knob mirroring, not a logged mutation: parallel passes are
        // bit-identical by construction, so the chain ignores it and the
        // coordinator re-sends it on respawn instead of replaying it.
        db_->eval_options().num_threads = static_cast<int>(msg.num_threads);
        db_->eval_options().intra_tree_threads =
            static_cast<int>(msg.intra_tree_threads);
        ok(0);
        return true;
      }
      case MsgKind::kReplayTail: {
        ReplayTailMsg msg;
        if (!ReplayTailMsg::Decode(payload, &msg)) break;
        TailInfoMsg info;
        info.lsn = lsn_;
        info.chain = chain_;
        *reply_kind = MsgKind::kTailInfo;
        *reply_payload = info.Encode();
        return true;
      }
      case MsgKind::kShipWal: {
        ShipWalMsg msg;
        if (!ShipWalMsg::Decode(payload, &msg)) break;
        if (msg.first_lsn != lsn_) {
          error("wal shipment starts at lsn " +
                std::to_string(msg.first_lsn) + " but worker is at " +
                std::to_string(lsn_));
          return true;
        }
        for (const WalEntry& entry : msg.entries) {
          MsgKind entry_kind = static_cast<MsgKind>(entry.kind);
          if (!IsLoggedMutation(entry_kind)) {
            error("wal shipment carries non-mutation kind " +
                  std::to_string(static_cast<int>(entry.kind)));
            return true;
          }
          // Each entry replays through the normal dispatch, advancing
          // (lsn, chain) exactly as the live request did. A failing entry
          // leaves the worker mid-shipment; the coordinator's fallback is
          // kReset + full resync, so partial application is safe.
          MsgKind entry_reply = MsgKind::kError;
          std::string entry_payload;
          Handle(entry_kind, entry.payload, &entry_reply, &entry_payload);
          if (entry_reply == MsgKind::kError) {
            ErrorMsg err;
            std::string text = ErrorMsg::Decode(entry_payload, &err)
                                   ? err.text
                                   : "unknown error";
            error("wal entry at lsn " + std::to_string(lsn_) +
                  " failed: " + text);
            return true;
          }
        }
        ok(lsn_);
        return true;
      }
      case MsgKind::kStatsRequest: {
        // Pure observation: no log entry, (lsn, chain) untouched.
        StatsReplyMsg msg;
        msg.entries = MetricsRegistry::Global().Snapshot();
        *reply_kind = MsgKind::kStatsReply;
        *reply_payload = msg.Encode();
        return true;
      }
      case MsgKind::kReset:
        ResetState();
        ok(0);
        return true;
      case MsgKind::kPing: {
        PingMsg ping;
        if (!PingMsg::Decode(payload, &ping)) {
          error("bad kPing payload");
          return true;
        }
        // Heartbeats double as durability-position probes: the pong
        // piggybacks (lsn, chain) without advancing either.
        PongMsg pong;
        pong.nonce = ping.nonce;
        pong.lsn = lsn_;
        pong.chain = chain_;
        *reply_kind = MsgKind::kPong;
        *reply_payload = pong.Encode();
        return true;
      }
      case MsgKind::kShutdown:
        ok(0);
        return false;
      case MsgKind::kHello:
        error("unexpected kHello after handshake");
        return true;
      default:
        error("unexpected message kind " +
              std::to_string(static_cast<int>(kind)));
        return true;
    }
  } catch (const CheckError& e) {
    error(e.what());
    return true;
  }
  error("malformed payload for message kind " +
        std::to_string(static_cast<int>(kind)));
  return true;
}

ShardWorker::ServeStatus ShardWorker::Serve(Socket* sock) {
  while (true) {
    uint8_t kind = 0;
    std::string payload;
    FrameResult r = RecvFrame(sock, &kind, &payload);
    if (r == FrameResult::kClosed) return ServeStatus::kDisconnected;
    if (r != FrameResult::kOk) return ServeStatus::kProtocolError;
    MsgKind reply_kind = MsgKind::kError;
    std::string reply_payload;
    bool keep_serving = Handle(static_cast<MsgKind>(kind), payload,
                               &reply_kind, &reply_payload);
    if (!SendFrame(sock, static_cast<uint8_t>(reply_kind), reply_payload)) {
      return ServeStatus::kDisconnected;
    }
    if (!keep_serving) return ServeStatus::kShutdown;
  }
}

int ShardWorker::RunStandalone(const std::string& address, bool quiet) {
  IgnoreSigPipe();
  std::string error;
  Listener listener = Listener::Listen(address, &error);
  if (!listener.valid()) {
    std::fprintf(stderr, "pvcdb worker: %s\n", error.c_str());
    return 1;
  }
  if (!quiet) {
    std::fprintf(stderr, "pvcdb worker listening on %s\n", address.c_str());
  }
  // One worker persists across coordinator connections: a front end that
  // restarts (crash recovery) re-dials and finds the applied state still
  // here, so its resync is a kReplayTail/kShipWal tail instead of a full
  // retransfer. A hello for a different configuration replaces the worker
  // with a blank one.
  std::unique_ptr<ShardWorker> worker;
  while (true) {
    Socket conn = listener.Accept();
    if (!conn.valid()) continue;
    uint8_t kind = 0;
    std::string payload;
    if (RecvFrame(&conn, &kind, &payload) != FrameResult::kOk) continue;
    HelloMsg hello;
    if (static_cast<MsgKind>(kind) != MsgKind::kHello ||
        !HelloMsg::Decode(payload, &hello) ||
        hello.version != kProtocolVersion) {
      ErrorMsg err;
      err.text = "bad handshake (protocol version " +
                 std::to_string(kProtocolVersion) + " required)";
      SendFrame(&conn, static_cast<uint8_t>(MsgKind::kError), err.Encode());
      continue;
    }
    if (!SendFrame(&conn, static_cast<uint8_t>(MsgKind::kHelloAck),
                   std::string())) {
      continue;
    }
    if (worker == nullptr || !worker->MatchesHello(hello)) {
      worker = std::make_unique<ShardWorker>(hello);
    }
    if (worker->Serve(&conn) == ServeStatus::kShutdown) {
      listener.UnlinkSocketFile();
      return 0;
    }
  }
}

}  // namespace pvcdb
