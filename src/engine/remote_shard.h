// RemoteShard: the coordinator's stub for one out-of-process shard worker
// (src/engine/shard_worker.h). One connected socket, strict one-request /
// one-reply sequencing, plus a split send/receive pair so the coordinator
// can scatter a request to every live worker before collecting any reply
// (the parallel fan-out of Coordinator::EvalDistributed).
//
// Failure semantics: any transport failure -- send error, torn frame, CRC
// mismatch, peer close, or a deadline expiry under RpcOptions -- marks the
// stub down and throws WorkerDown. A worker-side kError reply is
// different: the worker is healthy and stays up; the error text is
// rethrown as CheckError, exactly as the in-process engine would have
// thrown it. Once down, a stub stays down until the server respawns the
// worker and hands the coordinator a fresh connection
// (Coordinator::ReplaceWorker). A timed-out request is NEVER resent on the
// same connection: a late reply would desync the one-request/one-reply
// conversation, and a timeout can strike mid-frame, losing the stream
// position entirely. Recovery happens at resync, where the worker's
// (lsn, chain) position decides what (if anything) must be replayed.

#ifndef PVCDB_ENGINE_REMOTE_SHARD_H_
#define PVCDB_ENGINE_REMOTE_SHARD_H_

#include <stdexcept>
#include <string>
#include <sys/types.h>

#include "src/net/backoff.h"
#include "src/net/protocol.h"
#include "src/net/socket.h"

namespace pvcdb {

/// Per-stub RPC discipline. `deadline_ms` bounds every frame send and
/// receive of every RPC (kNoDeadline blocks forever — the pre-deadline
/// behaviour and the default). `retries` + `backoff` govern *reconnect*
/// attempts (ConnectWithRetry pacing when the coordinator respawns or
/// re-dials the worker) — never the resend of a request: a timed-out RPC
/// poisons its connection (the reply stream's alignment is lost), so the
/// stub is marked down and mutations are resolved through the worker's
/// (lsn, chain) position at resync, not by blind retry.
struct RpcOptions {
  int deadline_ms = kNoDeadline;
  int retries = 100;
  BackoffPolicy backoff;
};

/// Thrown by RemoteShard calls on transport failure (not on worker-side
/// engine errors, which surface as CheckError). Catching it is how the
/// coordinator triggers coordinator-local fallback.
class WorkerDown : public std::runtime_error {
 public:
  WorkerDown(uint32_t shard, const std::string& what)
      : std::runtime_error("worker " + std::to_string(shard) + " down: " +
                           what),
        shard_(shard) {}

  uint32_t shard() const { return shard_; }

 private:
  uint32_t shard_;
};

class RemoteShard {
 public:
  /// Takes ownership of a connected socket. `pid` is the worker process id
  /// when the server forked it (0 for standalone workers we only dialed).
  RemoteShard(uint32_t shard_index, Socket sock, pid_t pid);

  RemoteShard(RemoteShard&&) = default;
  RemoteShard& operator=(RemoteShard&&) = default;

  uint32_t shard_index() const { return shard_index_; }
  pid_t pid() const { return pid_; }
  bool down() const { return down_; }

  /// RPC discipline for every subsequent call on this stub (deadline per
  /// frame I/O; retry pacing for reconnects). Stubs default to blocking
  /// forever, matching the pre-fault-tolerance behaviour.
  void set_rpc_options(const RpcOptions& options) { options_ = options; }
  const RpcOptions& rpc_options() const { return options_; }

  /// Closes the socket and marks the stub down (the coordinator's view of
  /// a worker it decided to stop trusting).
  void MarkDown();

  /// kHello / kHelloAck handshake. Returns false (and marks the stub
  /// down) on any failure.
  bool Handshake(const HelloMsg& hello);

  /// One request, one reply. Throws WorkerDown on transport failure,
  /// CheckError on a worker-side kError, and WorkerDown("protocol
  /// confusion") if the reply kind is neither `expect` nor kError.
  /// Returns the reply payload.
  std::string Call(MsgKind request, const std::string& payload,
                   MsgKind expect);

  /// Scatter half of Call: just sends the request frame. Throws WorkerDown
  /// on failure. Every SendRequest must be paired with one RecvReply
  /// before the next request.
  void SendRequest(MsgKind request, const std::string& payload);

  /// Gather half of Call; same contract as Call's reply handling.
  std::string RecvReply(MsgKind expect);

  // -- Typed conveniences (all built on Call) -----------------------------

  void SyncVars(const SyncVarsMsg& msg);
  void UpdateVar(VarId var, double probability);
  uint64_t LoadPartition(const LoadPartitionMsg& msg);
  void AppendRow(const AppendRowMsg& msg);
  void DeleteRow(const DeleteRowMsg& msg);
  ChainResultMsg EvalChain(const EvalChainMsg& msg);
  ProbsResultMsg TableProbs(const TableProbsMsg& msg);
  uint64_t RegisterChainView(const RegisterChainViewMsg& msg);
  void DropChainView(const std::string& name);
  ChainResultMsg ViewProbs(const std::string& name);
  ViewInfoMsg ViewInfo(const std::string& name);

  /// Heartbeat. Sends kPing{nonce}; on success fills `*pong` (if non-null)
  /// with the worker's echoed nonce and (lsn, chain) position. False — and
  /// the stub marked down — on any transport failure, timeout, or nonce
  /// mismatch (a mismatch means reply alignment was lost).
  bool Ping(uint64_t nonce, PongMsg* pong);
  bool Ping() { return Ping(0, nullptr); }

  /// Best-effort kShutdown; never throws. The worker exits its serve loop
  /// after replying.
  void Shutdown();

 private:
  uint32_t shard_index_ = 0;
  Socket sock_;
  pid_t pid_ = 0;
  bool down_ = false;
  RpcOptions options_;
};

}  // namespace pvcdb

#endif  // PVCDB_ENGINE_REMOTE_SHARD_H_
