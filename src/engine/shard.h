// Sharded databases: tables hash-partitioned by key across N inner
// Database shards, with scatter-gather evaluation (engineering extension;
// the paper's tuple-independent model makes per-tuple step II work
// embarrassingly parallel across partitions, and partitioning decides
// *where* each tuple's work runs).
//
// Topology and contracts:
//
//  - One shared VariableTable (Database's shared-variables load hook):
//    random-variable ids are globally scoped, so annotations that mention
//    variables owned by different shards -- join results, cross-shard
//    aggregates -- keep their correlations intact.
//  - Tables are hash-partitioned on a key column through a pluggable
//    ShardRouter (default: FNV-1a on the primary key, the table's first
//    column). Partitions preserve global row order within each shard.
//  - A coordinator Database holds the gathered logical tables and replays
//    exactly the load/interning sequence of an unsharded engine. This is a
//    deliberate trade-off: keeping a full coordinator copy (2x memory;
//    up to 3x for tables serving distributed plans, whose
//    provenance-extended partitions are cached) is what makes cross-shard
//    operators bit-identical to the unsharded engine. Out-of-process shards and a copy-free coordinator require
//    relaxing bitwise identity to epsilon agreement for cross-shard
//    merges -- the ROADMAP names that as the follow-up.
//
// Every public result is *bit-identical* to the single-database engine at
// any shard count and any thread count:
//
//  - Step I scatter: Select/Rename chains over one sharded table (the
//    fragment of ShardDrivingTable) evaluate per shard against that
//    shard's partition -- annotations pass through these operators
//    untouched, so shard-local evaluation plus a deterministic merge on
//    driving-row order reproduces the unsharded result exactly. All other
//    queries (joins, projections, unions, aggregates merge rows across
//    partitions) gather to the coordinator, whose pool state matches the
//    unsharded engine's bit for bit.
//  - Step II scatter: the batch probability passes fan result rows across
//    PR 2's ThreadPool; each row clones its annotation from the pool of
//    the engine that produced it into a task-private ExprPool and runs the
//    identical compile + probability pipeline, and the gather writes
//    results in global row order (shard-index order within each table).

#ifndef PVCDB_ENGINE_SHARD_H_
#define PVCDB_ENGINE_SHARD_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/engine/database.h"

namespace pvcdb {

/// Routing policy: which shard owns a row, given its key cell. Routes must
/// be pure functions of (key, num_shards) -- placement is recomputed on
/// reload and must agree across processes.
class ShardRouter {
 public:
  virtual ~ShardRouter() = default;

  /// Shard index in [0, num_shards) for a row with key cell `key`.
  virtual size_t Route(const Cell& key, size_t num_shards) const = 0;

  /// Human-readable policy name (diagnostics / shell output).
  virtual std::string name() const = 0;
};

/// Default router: platform-independent FNV-1a over the key cell's
/// canonical bytes (Cell::StableHash), modulo the shard count.
class FnvShardRouter : public ShardRouter {
 public:
  size_t Route(const Cell& key, size_t num_shards) const override;
  std::string name() const override { return "fnv1a"; }
};

/// Integer-key router: key % num_shards. Placement is obvious from the
/// data, which makes tests and skew experiments easy to set up.
class ModuloShardRouter : public ShardRouter {
 public:
  size_t Route(const Cell& key, size_t num_shards) const override;
  std::string name() const override { return "modulo"; }
};

/// A query result over a sharded database: row partitions that live in the
/// pools of the engines that produced them (the N shards for distributed
/// plans, the coordinator otherwise), plus the global row order. Pass it
/// back to the ShardedDatabase batch methods for probabilities; the cells
/// are readable directly.
class ShardedResult {
 public:
  const Schema& schema() const { return schema_; }
  size_t NumRows() const { return order_.size(); }

  /// Data cells of global row `i`.
  const std::vector<Cell>& cells(size_t i) const;

  /// True when the rows live on the shards (distributed step I plan);
  /// false when they live on the coordinator.
  bool distributed() const { return distributed_; }

 private:
  friend class ShardedDatabase;

  Schema schema_;
  std::vector<PvcTable> parts_;  ///< Per shard, or a single coordinator part.
  bool distributed_ = false;
  /// Global row order: (part index, row index within the part).
  std::vector<std::pair<uint32_t, uint32_t>> order_;
};

/// A database hash-partitioned across `num_shards` inner Databases over one
/// shared probability space. See the file comment for the semantics; the
/// API mirrors the Database facade.
class ShardedDatabase {
 public:
  /// `router` defaults to FnvShardRouter.
  explicit ShardedDatabase(size_t num_shards,
                           SemiringKind semiring = SemiringKind::kBool,
                           std::unique_ptr<ShardRouter> router = nullptr);

  ShardedDatabase(const ShardedDatabase&) = delete;
  ShardedDatabase& operator=(const ShardedDatabase&) = delete;

  size_t num_shards() const { return shards_.size(); }
  const ShardRouter& router() const { return *router_; }

  /// The shared variable registry (one probability space for all shards).
  VariableTable& variables() { return coordinator_.variables(); }
  const VariableTable& variables() const { return coordinator_.variables(); }

  /// Engine-wide knobs, mirrored to every shard before each scatter.
  EvalOptions& eval_options() { return coordinator_.eval_options(); }
  const EvalOptions& eval_options() const {
    return coordinator_.eval_options();
  }
  CompileOptions& compile_options() { return coordinator_.compile_options(); }

  /// The coordinator: gathered logical tables, bit-identical to an
  /// unsharded Database loaded with the same sequence.
  Database& coordinator() { return coordinator_; }
  const Database& coordinator() const { return coordinator_; }

  /// Shard `s`'s engine (partition tables + shard-local pool).
  const Database& shard(size_t s) const;

  // -- Catalog ------------------------------------------------------------

  /// Registers a tuple-independent table: one fresh Bernoulli variable per
  /// row, created in global row order (ids identical to an unsharded
  /// load), rows routed to shards by the cell in `key_column` (default:
  /// the first column, the conventional primary key).
  void AddTupleIndependentTable(const std::string& name, Schema schema,
                                std::vector<std::vector<Cell>> rows,
                                std::vector<double> probabilities,
                                const std::string& key_column = "");

  bool HasTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;
  size_t NumRows(const std::string& name) const;

  /// Rows per shard for `name` (skew diagnostics; sums to NumRows).
  std::vector<size_t> ShardRowCounts(const std::string& name) const;

  // -- Step I: computing result tuples ------------------------------------

  /// Evaluates `q`: per shard for the distributable fragment
  /// (ShardDrivingTable over a sharded table), on the coordinator
  /// otherwise. Identical rows in identical order either way.
  ShardedResult Run(const Query& q);

  /// The Q0 deterministic baseline (always coordinator-evaluated:
  /// annotations fold to constants, there is nothing to distribute).
  ShardedResult RunDeterministic(const Query& q);

  // -- Step II: scatter-gather probability passes --------------------------

  /// P[Phi != 0_S] per row of `result`, in global row order.
  std::vector<double> TupleProbabilities(const ShardedResult& result);

  /// Annotation distribution per row of `result`, in global row order.
  std::vector<Distribution> AnnotationDistributions(
      const ShardedResult& result);

  /// Interval bounds per row of `result` (Boolean semiring only).
  std::vector<ProbabilityBounds> ApproximateTupleProbabilities(
      const ShardedResult& result,
      ApproximateOptions options = ApproximateOptions());

  /// Base-table overloads: the same passes over the partitions of the
  /// sharded table `name`, each shard's rows computed from its own pool.
  std::vector<double> TupleProbabilities(const std::string& name);
  std::vector<Distribution> AnnotationDistributions(const std::string& name);
  std::vector<ProbabilityBounds> ApproximateTupleProbabilities(
      const std::string& name,
      ApproximateOptions options = ApproximateOptions());

  /// P[alpha = v | Phi != 0_S] for an aggregation column of a
  /// coordinator-evaluated result (aggregates always gather, so
  /// distributed results have no aggregation columns).
  Distribution ConditionalAggregateDistribution(const ShardedResult& result,
                                                size_t row_index,
                                                const std::string& column);

  /// Tabular rendering of a result in global row order (annotations are
  /// rendered through a scratch pool; probabilities are unaffected).
  std::string ResultToString(const ShardedResult& result) const;

 private:
  /// One row partition and the pool its annotations live in.
  struct PartRef {
    const PvcTable* table;
    const ExprPool* pool;
  };

  std::vector<PartRef> PartsOf(const ShardedResult& result) const;
  std::vector<PartRef> PartsOfTable(const std::string& name) const;
  const std::vector<std::pair<uint32_t, uint32_t>>& PlacementOf(
      const std::string& name) const;

  ShardedResult CoordinatorResult(PvcTable table) const;
  ShardedResult RunDistributed(const Query& q, const std::string& table);

  /// The table's partitions extended with the hidden provenance column,
  /// built on first use and cached until the table is replaced.
  const std::vector<PvcTable>& AugmentedPartitionsOf(
      const std::string& table);

  /// Copies the engine-wide knobs onto every shard (serial; called before
  /// each scatter so option mutations through eval_options() take effect
  /// everywhere).
  void SyncShardOptions();

  std::vector<Distribution> DistributionsImpl(
      const std::vector<PartRef>& parts,
      const std::vector<std::pair<uint32_t, uint32_t>>& order);
  std::vector<ProbabilityBounds> ApproximateImpl(
      const std::vector<PartRef>& parts,
      const std::vector<std::pair<uint32_t, uint32_t>>& order,
      ApproximateOptions options);

  std::unique_ptr<ShardRouter> router_;
  Database coordinator_;
  std::vector<std::unique_ptr<Database>> shards_;
  /// Per table: global row -> (shard, row within the shard's partition).
  std::map<std::string, std::vector<std::pair<uint32_t, uint32_t>>>
      placements_;
  /// Per table: partitions + provenance column for distributed plans.
  std::map<std::string, std::vector<PvcTable>> augmented_cache_;
};

}  // namespace pvcdb

#endif  // PVCDB_ENGINE_SHARD_H_
