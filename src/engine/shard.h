// Sharded databases: tables hash-partitioned by key across N inner
// Database shards, with scatter-gather evaluation (engineering extension;
// the paper's tuple-independent model makes per-tuple step II work
// embarrassingly parallel across partitions, and partitioning decides
// *where* each tuple's work runs).
//
// Topology and contracts:
//
//  - One shared VariableTable (Database's shared-variables load hook):
//    random-variable ids are globally scoped, so annotations that mention
//    variables owned by different shards -- join results, cross-shard
//    aggregates -- keep their correlations intact.
//  - Tables are hash-partitioned on a key column through a pluggable
//    ShardRouter (default: FNV-1a on the primary key, the table's first
//    column). Partitions preserve global row order within each shard.
//  - A coordinator Database holds the gathered logical tables and replays
//    exactly the load/interning sequence of an unsharded engine. This is a
//    deliberate trade-off: keeping a full coordinator copy (2x memory;
//    up to 3x for tables serving distributed plans, whose
//    provenance-extended partitions are cached) is what makes cross-shard
//    operators bit-identical to the unsharded engine. Out-of-process shards and a copy-free coordinator require
//    relaxing bitwise identity to epsilon agreement for cross-shard
//    merges -- the ROADMAP names that as the follow-up.
//
// Every public result is *bit-identical* to the single-database engine at
// any shard count and any thread count:
//
//  - Step I scatter: Select/Rename chains over one sharded table (the
//    fragment of ShardDrivingTable) evaluate per shard against that
//    shard's partition -- annotations pass through these operators
//    untouched, so shard-local evaluation plus a deterministic merge on
//    driving-row order reproduces the unsharded result exactly. All other
//    queries (joins, projections, unions, aggregates merge rows across
//    partitions) gather to the coordinator, whose pool state matches the
//    unsharded engine's bit for bit.
//  - Step II scatter: the batch probability passes fan result rows across
//    PR 2's ThreadPool; each row clones its annotation from the pool of
//    the engine that produced it into a task-private ExprPool and runs the
//    identical compile + probability pipeline, and the gather writes
//    results in global row order (shard-index order within each table).

#ifndef PVCDB_ENGINE_SHARD_H_
#define PVCDB_ENGINE_SHARD_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/engine/database.h"

namespace pvcdb {

/// Hidden provenance column carried through distributed step I plans so the
/// gather can merge per-shard results back into global row order. Queries
/// mentioning this name fall back to the coordinator. Shared with the
/// out-of-process worker (src/engine/shard_worker.h), which must augment
/// its partitions with the identical column name.
extern const char kShardRowIdColumn[];

/// Routing policy: which shard owns a row, given its key cell. Routes must
/// be pure functions of (key, num_shards) -- placement is recomputed on
/// reload and must agree across processes.
class ShardRouter {
 public:
  virtual ~ShardRouter() = default;

  /// Shard index in [0, num_shards) for a row with key cell `key`.
  virtual size_t Route(const Cell& key, size_t num_shards) const = 0;

  /// Human-readable policy name (diagnostics / shell output).
  virtual std::string name() const = 0;
};

/// Default router: platform-independent FNV-1a over the key cell's
/// canonical bytes (Cell::StableHash), modulo the shard count.
class FnvShardRouter : public ShardRouter {
 public:
  size_t Route(const Cell& key, size_t num_shards) const override;
  std::string name() const override { return "fnv1a"; }
};

/// Integer-key router: key % num_shards. Placement is obvious from the
/// data, which makes tests and skew experiments easy to set up.
class ModuloShardRouter : public ShardRouter {
 public:
  size_t Route(const Cell& key, size_t num_shards) const override;
  std::string name() const override { return "modulo"; }
};

/// A query result over a sharded database: row partitions that live in the
/// pools of the engines that produced them (the N shards for distributed
/// plans, the coordinator otherwise), plus the global row order. Pass it
/// back to the ShardedDatabase batch methods for probabilities; the cells
/// are readable directly.
class ShardedResult {
 public:
  const Schema& schema() const { return schema_; }
  size_t NumRows() const { return order_.size(); }

  /// Data cells of global row `i`.
  const std::vector<Cell>& cells(size_t i) const;

  /// True when the rows live on the shards (distributed step I plan);
  /// false when they live on the coordinator.
  bool distributed() const { return distributed_; }

 private:
  friend class ShardedDatabase;

  Schema schema_;
  std::vector<PvcTable> parts_;  ///< Per shard, or a single coordinator part.
  bool distributed_ = false;
  /// Global row order: (part index, row index within the part).
  std::vector<std::pair<uint32_t, uint32_t>> order_;
};

/// A database hash-partitioned across `num_shards` inner Databases over one
/// shared probability space. See the file comment for the semantics; the
/// API mirrors the Database facade.
class ShardedDatabase {
 public:
  /// `router` defaults to FnvShardRouter.
  explicit ShardedDatabase(size_t num_shards,
                           SemiringKind semiring = SemiringKind::kBool,
                           std::unique_ptr<ShardRouter> router = nullptr);

  ShardedDatabase(const ShardedDatabase&) = delete;
  ShardedDatabase& operator=(const ShardedDatabase&) = delete;

  size_t num_shards() const { return shards_.size(); }
  const ShardRouter& router() const { return *router_; }

  /// The shared variable registry (one probability space for all shards).
  VariableTable& variables() { return coordinator_.variables(); }
  const VariableTable& variables() const { return coordinator_.variables(); }

  /// Engine-wide knobs, mirrored to every shard before each scatter.
  EvalOptions& eval_options() { return coordinator_.eval_options(); }
  const EvalOptions& eval_options() const {
    return coordinator_.eval_options();
  }
  CompileOptions& compile_options() { return coordinator_.compile_options(); }

  /// The coordinator: gathered logical tables, bit-identical to an
  /// unsharded Database loaded with the same sequence.
  Database& coordinator() { return coordinator_; }
  const Database& coordinator() const { return coordinator_; }

  /// Durability hook (src/engine/wal.h): attaches the writer to the
  /// coordinator, through which every mutation routes -- so inserts,
  /// deletes and probability updates log exactly like the unsharded
  /// engine's. Table loads and view registration log at this level (they
  /// carry sharded-only state: the routing key column, per-shard views).
  void set_wal(WalWriter* wal) { coordinator_.set_wal(wal); }
  WalWriter* wal() const { return coordinator_.wal(); }

  /// Shard `s`'s engine (partition tables + shard-local pool).
  const Database& shard(size_t s) const;

  // -- Catalog ------------------------------------------------------------

  /// Registers a tuple-independent table: one fresh Bernoulli variable per
  /// row, created in global row order (ids identical to an unsharded
  /// load), rows routed to shards by the cell in `key_column` (default:
  /// the first column, the conventional primary key).
  void AddTupleIndependentTable(const std::string& name, Schema schema,
                                std::vector<std::vector<Cell>> rows,
                                std::vector<double> probabilities,
                                const std::string& key_column = "");

  /// Rebuild / replication hook mirroring
  /// Database::AddVariableAnnotatedTable: rows annotated by *existing*
  /// variables of the shared registry, routed by `key_column`.
  void AddVariableAnnotatedTable(const std::string& name, Schema schema,
                                 std::vector<std::vector<Cell>> rows,
                                 const std::vector<VarId>& vars,
                                 const std::string& key_column = "");

  bool HasTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;
  size_t NumRows(const std::string& name) const;

  /// Name of the column rows of `name` are routed by (capture hook for
  /// snapshots: reloading with this key reproduces the placement).
  std::string KeyColumnName(const std::string& name) const;

  /// Rows per shard for `name` (skew diagnostics; sums to NumRows).
  std::vector<size_t> ShardRowCounts(const std::string& name) const;

  // -- Mutations (the IVM delta engine; see src/engine/view.h) --------------
  //
  // Deltas route through the ShardRouter exactly like the initial load:
  // the coordinator replays the unsharded mutation (shared variable
  // creation in global row order, coordinator view maintenance), the
  // owning shard's partition and the placement map stay consistent, and
  // per-shard views absorb the delta locally. All results remain
  // bit-identical to a from-scratch sharded rebuild of the final state.

  /// Appends a tuple with a fresh Bernoulli variable; the row is routed by
  /// its key-column cell. Returns the new global row index.
  size_t InsertTuple(const std::string& table, std::vector<Cell> cells,
                     double p);

  /// Replay hook mirroring Database::AppendRowToTable: appends a row
  /// annotated with the *existing* shared variable `var`, routed exactly
  /// like InsertTuple. Never writes to the WAL (it is what WAL replay
  /// calls).
  size_t AppendRowToTable(const std::string& table, std::vector<Cell> cells,
                          VarId var);

  /// Removes the row at global index `row_index`.
  void DeleteRowAt(const std::string& table, size_t row_index);

  /// Removes every row whose first-column cell equals `key`; returns the
  /// number of rows removed.
  size_t DeleteTuple(const std::string& table, const Cell& key);

  /// Replaces variable `var`'s distribution with Bernoulli(p) and
  /// refreshes / drops the affected cached step II results everywhere.
  void UpdateProbability(VarId var, double p);

  // -- Materialized views (src/engine/view.h) -------------------------------
  //
  // The distributable Select/Rename fragment is cached *per shard*: each
  // shard keeps its partition of the view plus its own step II cache, and
  // deltas touch only the owning shard. Every other query shape registers
  // on the coordinator's ViewRegistry (which replays the unsharded engine
  // bit for bit).

  void RegisterView(const std::string& name, QueryPtr query);
  bool HasView(const std::string& name) const;
  void DropView(const std::string& name);
  std::vector<std::string> ViewNames() const;

  /// (name, query) of every registered view, per-shard views first --
  /// the order snapshot capture records and recovery re-registers them in
  /// (the two registries intern into disjoint pools, so this order is
  /// bit-identity-safe regardless of original interleaving).
  std::vector<std::pair<std::string, QueryPtr>> ViewCatalog() const;

  /// Snapshot of the view's cached step I result in global row order.
  ShardedResult ViewResult(const std::string& name);

  /// Cached per-row P[Phi != 0_S] of the view in global row order,
  /// bit-identical to TupleProbabilities(ViewResult(name)).
  std::vector<double> ViewProbabilities(const std::string& name);

  /// One diagnostics line per registered view (shell `views` command).
  struct ViewInfo {
    std::string name;
    std::string plan;  ///< "chain (per shard)" or the coordinator plan.
    size_t rows = 0;
    size_t cache_entries = 0;  ///< Step II cache entries (all shards).
  };
  std::vector<ViewInfo> ViewInfos();

  // -- Step I: computing result tuples ------------------------------------

  /// Evaluates `q`: per shard for the distributable fragment
  /// (ShardDrivingTable over a sharded table), on the coordinator
  /// otherwise. Identical rows in identical order either way.
  ShardedResult Run(const Query& q);

  /// The Q0 deterministic baseline (always coordinator-evaluated:
  /// annotations fold to constants, there is nothing to distribute).
  ShardedResult RunDeterministic(const Query& q);

  // -- Step II: scatter-gather probability passes --------------------------

  /// P[Phi != 0_S] per row of `result`, in global row order.
  std::vector<double> TupleProbabilities(const ShardedResult& result);

  /// Annotation distribution per row of `result`, in global row order.
  std::vector<Distribution> AnnotationDistributions(
      const ShardedResult& result);

  /// Interval bounds per row of `result` (Boolean semiring only).
  std::vector<ProbabilityBounds> ApproximateTupleProbabilities(
      const ShardedResult& result,
      ApproximateOptions options = ApproximateOptions());

  /// Base-table overloads: the same passes over the partitions of the
  /// sharded table `name`, each shard's rows computed from its own pool.
  std::vector<double> TupleProbabilities(const std::string& name);
  std::vector<Distribution> AnnotationDistributions(const std::string& name);
  std::vector<ProbabilityBounds> ApproximateTupleProbabilities(
      const std::string& name,
      ApproximateOptions options = ApproximateOptions());

  /// P[alpha = v | Phi != 0_S] for an aggregation column of a
  /// coordinator-evaluated result (aggregates always gather, so
  /// distributed results have no aggregation columns).
  Distribution ConditionalAggregateDistribution(const ShardedResult& result,
                                                size_t row_index,
                                                const std::string& column);

  /// Tabular rendering of a result in global row order (annotations are
  /// rendered through a scratch pool; probabilities are unaffected).
  std::string ResultToString(const ShardedResult& result) const;

 private:
  /// One row partition and the pool its annotations live in.
  struct PartRef {
    const PvcTable* table;
    const ExprPool* pool;
  };

  /// A per-shard materialized view of the distributable fragment: the
  /// shard partitions of the result, their global row provenance, and one
  /// step II cache per shard (annotation ids are pool-local).
  struct ShardedView {
    std::string name;
    QueryPtr query;
    std::string driving;  ///< The sharded base table the chain scans.
    Schema schema;        ///< Output schema (provenance column stripped).
    std::vector<PvcTable> parts;
    /// Per shard: the global driving-row index of each part row
    /// (ascending).
    std::vector<std::vector<int64_t>> global;
    /// Global row order: (shard, row within the shard's part), ascending
    /// by global driving-row index.
    std::vector<std::pair<uint32_t, uint32_t>> order;
    std::vector<StepTwoCache> caches;  ///< One per shard.
  };

  /// The distributed step I evaluation shared by Run() and the per-shard
  /// view seed: per-shard results of the chain with global provenance.
  struct DistributedParts {
    Schema schema;
    std::vector<PvcTable> parts;
    std::vector<std::vector<int64_t>> global;
    std::vector<std::pair<uint32_t, uint32_t>> order;
  };
  DistributedParts EvalDistributed(const Query& q, const std::string& table);

  /// Partitions the coordinator's freshly (re)loaded `name` across the
  /// shards (each row annotated by `vars[i]` re-interned into its shard's
  /// pool) and refreshes placement, key column and dependent caches.
  void PartitionLoadedTable(const std::string& name, size_t key_index,
                            const std::vector<VarId>& vars);

  /// The routing + bookkeeping tail shared by InsertTuple and
  /// AppendRowToTable: sends the already-appended coordinator row to its
  /// shard and updates placement, caches and per-shard views.
  void RouteAppendedRow(const std::string& table, size_t key_index,
                        const std::vector<Cell>& cells, VarId var,
                        size_t global_row);

  ShardedView* FindShardedView(const std::string& name);
  /// Builds / rebuilds `view`'s cached parts from the current partitions.
  void SeedShardedView(ShardedView* view);
  void ApplyShardedViewInsert(ShardedView* view, size_t shard,
                              size_t global_row, const std::vector<Cell>& cells,
                              ExprId shard_annotation);
  void ApplyShardedViewDelete(ShardedView* view, size_t global_row);

  std::vector<PartRef> PartsOf(const ShardedResult& result) const;
  std::vector<PartRef> PartsOfTable(const std::string& name) const;
  const std::vector<std::pair<uint32_t, uint32_t>>& PlacementOf(
      const std::string& name) const;

  ShardedResult CoordinatorResult(PvcTable table) const;
  ShardedResult RunDistributed(const Query& q, const std::string& table);

  /// The table's partitions extended with the hidden provenance column,
  /// built on first use and cached until the table is replaced.
  const std::vector<PvcTable>& AugmentedPartitionsOf(
      const std::string& table);

  /// Copies the engine-wide knobs onto every shard (serial; called before
  /// each scatter so option mutations through eval_options() take effect
  /// everywhere).
  void SyncShardOptions();

  std::vector<Distribution> DistributionsImpl(
      const std::vector<PartRef>& parts,
      const std::vector<std::pair<uint32_t, uint32_t>>& order);
  std::vector<ProbabilityBounds> ApproximateImpl(
      const std::vector<PartRef>& parts,
      const std::vector<std::pair<uint32_t, uint32_t>>& order,
      ApproximateOptions options);

  std::unique_ptr<ShardRouter> router_;
  Database coordinator_;
  std::vector<std::unique_ptr<Database>> shards_;
  /// Per table: global row -> (shard, row within the shard's partition).
  std::map<std::string, std::vector<std::pair<uint32_t, uint32_t>>>
      placements_;
  /// Per table: the key column rows are routed by (insert deltas must use
  /// the load-time routing).
  std::map<std::string, size_t> key_columns_;
  /// Per table: partitions + provenance column for distributed plans.
  std::map<std::string, std::vector<PvcTable>> augmented_cache_;
  /// Per-shard views of the distributable fragment, registration order.
  std::vector<std::unique_ptr<ShardedView>> sharded_views_;
};

}  // namespace pvcdb

#endif  // PVCDB_ENGINE_SHARD_H_
