#include "src/engine/average.h"

#include "src/dtree/joint.h"
#include "src/util/check.h"

namespace pvcdb {

AverageDistribution ComputeAverageDistribution(
    ExprPool* pool, const VariableTable& variables, ExprId sum_expr,
    ExprId count_expr, CompileOptions options) {
  PVC_CHECK(pool != nullptr);
  PVC_CHECK_MSG(pool->node(sum_expr).sort == ExprSort::kMonoid,
                "sum_expr must be a semimodule expression");
  PVC_CHECK_MSG(pool->node(count_expr).sort == ExprSort::kMonoid,
                "count_expr must be a semimodule expression");
  JointDistribution joint = ComputeJointDistribution(
      pool, variables, {sum_expr, count_expr}, options);
  double present_mass = 0.0;
  AverageDistribution averages;
  for (const auto& [tuple, p] : joint) {
    int64_t sum = tuple[0];
    int64_t count = tuple[1];
    if (count <= 0) continue;
    present_mass += p;
    averages[static_cast<double>(sum) / static_cast<double>(count)] += p;
  }
  if (present_mass <= 0.0) return {};
  for (auto& [avg, p] : averages) p /= present_mass;
  return averages;
}

double ExpectedAverage(ExprPool* pool, const VariableTable& variables,
                       ExprId sum_expr, ExprId count_expr,
                       CompileOptions options) {
  AverageDistribution d = ComputeAverageDistribution(
      pool, variables, sum_expr, count_expr, options);
  double mean = 0.0;
  for (const auto& [avg, p] : d) mean += avg * p;
  return mean;
}

}  // namespace pvcdb
