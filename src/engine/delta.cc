#include "src/engine/delta.h"

#include <algorithm>
#include <utility>

#include "src/util/check.h"
#include "src/util/metrics.h"
#include "src/util/parallel.h"

namespace pvcdb {

CompiledDistribution IsolatedCompileAndDistribution(
    const ExprPool& source, const VariableTable& variables, ExprId annotation,
    const CompileOptions& options, int intra_tree_threads) {
  ExprPool local(source.semiring().kind());
  ExprId e = source.CloneInto(&local, annotation);
  CompiledDistribution out;
  // This runs once per result row, so exact spans would double the
  // instrumentation bill of cheap annotations: sample 1 in 8 (the trace
  // receives the x8-scaled estimate; see PVCDB_SPAN_SAMPLED).
  {
    PVCDB_SPAN_SAMPLED(compile_span, "compile", 8);
    out.tree = CompileToDTree(&local, &variables, e, options);
  }
  PVCDB_COUNTER_ADD("engine.dtrees_compiled", 1);
  ProbabilityOptions popts;
  popts.num_threads = intra_tree_threads;
  {
    PVCDB_SPAN_SAMPLED(step2_span, "step2", 8);
    out.distribution =
        ComputeDistribution(out.tree, variables, local.semiring(), popts);
  }
  return out;
}

size_t DeleteRowsMatchingKey(const PvcTable& table, const Cell& key,
                             const std::function<void(size_t)>& delete_at) {
  PVC_CHECK_MSG(table.schema().NumColumns() > 0, "zero-column table");
  std::vector<size_t> hits;
  for (size_t i = 0; i < table.NumRows(); ++i) {
    if (table.row(i).cells[0] == key) hits.push_back(i);
  }
  for (size_t i = hits.size(); i-- > 0;) {
    delete_at(hits[i]);
  }
  return hits.size();
}

bool SameSupport(const Distribution& a, const Distribution& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.entries()[i].first != b.entries()[i].first) return false;
  }
  return true;
}

void StepTwoCache::Touch(Entry* entry) {
  if (entry->lru_it != lru_.begin()) {
    lru_.splice(lru_.begin(), lru_, entry->lru_it);
  }
}

void StepTwoCache::Erase(std::unordered_map<ExprId, Entry>::iterator it) {
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

void StepTwoCache::EnforceCapacity(size_t capacity) {
  if (capacity == 0) return;
  while (entries_.size() > capacity) {
    ExprId victim = lru_.back();
    auto it = entries_.find(victim);
    PVC_CHECK_MSG(it != entries_.end(), "LRU list out of sync");
    Erase(it);
    ++stats_.evicted;
    PVCDB_COUNTER_ADD("cache.evicted", 1);
  }
}

size_t StepTwoCache::LiveEntries(const PvcTable& table) const {
  std::unordered_map<ExprId, char> counted;
  counted.reserve(table.NumRows());
  size_t live = 0;
  for (const Row& row : table.rows()) {
    if (!counted.emplace(row.annotation, 0).second) continue;
    if (entries_.count(row.annotation) > 0) ++live;
  }
  return live;
}

std::vector<double> StepTwoCache::Probabilities(
    const ExprPool& pool, const VariableTable& variables,
    const PvcTable& table, const CompileOptions& options,
    const EvalOptions& eval_options) {
  size_t n = table.NumRows();

  // Eviction: deleted rows leave dead entries behind (every insert mints
  // a fresh variable, so annotations of removed rows never come back).
  // Once those dominate the cache, drop everything the current rows do
  // not reference -- churn then cannot grow the cache beyond O(n).
  if (entries_.size() > 2 * n + 16) {
    std::unordered_map<ExprId, char> live;
    live.reserve(n);
    for (size_t i = 0; i < n; ++i) live.emplace(table.row(i).annotation, 0);
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (live.count(it->first) == 0) {
        auto victim = it++;
        Erase(victim);
        ++stats_.pruned;
        PVCDB_COUNTER_ADD("cache.pruned", 1);
      } else {
        ++it;
      }
    }
    for (auto it = var_index_.begin(); it != var_index_.end();) {
      std::vector<ExprId>& list = it->second;
      list.erase(std::remove_if(list.begin(), list.end(),
                                [&](ExprId a) { return live.count(a) == 0; }),
                 list.end());
      it = list.empty() ? var_index_.erase(it) : std::next(it);
    }
  }

  // Distinct missing annotations, in first-occurrence row order (duplicate
  // tuples share one annotation id thanks to hash-consing). Hits are
  // touched to the front of the recency list.
  std::vector<ExprId> missing;
  {
    std::unordered_map<ExprId, size_t> seen;
    for (size_t i = 0; i < n; ++i) {
      ExprId a = table.row(i).annotation;
      auto hit = entries_.find(a);
      if (hit != entries_.end()) {
        Touch(&hit->second);
        continue;
      }
      if (seen.count(a) > 0) continue;
      seen.emplace(a, missing.size());
      missing.push_back(a);
    }
  }

  // Pure phase: the per-row pipeline per missing annotation, fanned across
  // threads exactly like an uncached batch pass.
  std::vector<CompiledDistribution> compiled(missing.size());
  ParallelFor(eval_options.num_threads, missing.size(), [&](size_t i) {
    compiled[i] =
        IsolatedCompileAndDistribution(pool, variables, missing[i], options,
                                       eval_options.intra_tree_threads);
  });

  // Serial phase: memoize and index the new entries. An annotation that
  // was dropped (support change) and recompiled may already sit in some
  // lists -- de-duplicate so drop/recompile cycles cannot grow the index
  // or refresh an entry twice.
  for (size_t i = 0; i < missing.size(); ++i) {
    Entry entry;
    entry.probability = NonZeroMass(compiled[i].distribution);
    entry.compiled = std::move(compiled[i]);
    lru_.push_front(missing[i]);
    entry.lru_it = lru_.begin();
    for (VarId v : pool.VarsOf(missing[i])) {
      std::vector<ExprId>& list = var_index_[v];
      if (std::find(list.begin(), list.end(), missing[i]) == list.end()) {
        list.push_back(missing[i]);
      }
    }
    entries_.emplace(missing[i], std::move(entry));
  }
  stats_.misses += missing.size();
  stats_.hits += n - missing.size();
  PVCDB_COUNTER_ADD("cache.misses", missing.size());
  PVCDB_COUNTER_ADD("cache.hits", n - missing.size());

  std::vector<double> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto it = entries_.find(table.row(i).annotation);
    PVC_CHECK_MSG(it != entries_.end(), "missing step II cache entry");
    out.push_back(it->second.probability);
  }

  // Bound the cache only after answering: rows beyond the capacity still
  // get exact answers this round, they just are not retained.
  EnforceCapacity(eval_options.step_two_cache_capacity);
  return out;
}

void StepTwoCache::OnVariableUpdate(VarId var, const VariableTable& variables,
                                    const Semiring& semiring,
                                    bool same_support) {
  auto it = var_index_.find(var);
  if (it == var_index_.end()) return;
  if (!same_support) {
    // The d-tree's mutex branches enumerate the old support; drop the
    // entries and recompile lazily. The inverted-index lists of the other
    // variables keep stale ids -- harmless, they miss on lookup.
    for (ExprId a : it->second) {
      auto entry = entries_.find(a);
      if (entry == entries_.end()) continue;
      Erase(entry);
      ++stats_.dropped;
      PVCDB_COUNTER_ADD("cache.dropped", 1);
    }
    var_index_.erase(it);
    return;
  }
  for (ExprId a : it->second) {
    auto entry = entries_.find(a);
    if (entry == entries_.end()) continue;  // Dropped earlier.
    entry->second.compiled.distribution = ComputeDistribution(
        entry->second.compiled.tree, variables, semiring);
    entry->second.probability =
        NonZeroMass(entry->second.compiled.distribution);
    ++stats_.refreshed;
    PVCDB_COUNTER_ADD("cache.refreshed", 1);
  }
}

void StepTwoCache::Clear() {
  entries_.clear();
  var_index_.clear();
  lru_.clear();
}

}  // namespace pvcdb
