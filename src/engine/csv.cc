#include "src/engine/csv.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "src/dtree/compile.h"
#include "src/dtree/probability.h"
#include "src/engine/coordinator.h"
#include "src/engine/shard.h"

namespace pvcdb {

namespace {

// Splits one CSV line honouring double-quoted fields.
std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // Tolerate CRLF input.
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

bool ParseColumnSpec(const std::string& spec, Column* out,
                     std::string* error) {
  size_t colon = spec.rfind(':');
  if (colon == std::string::npos) {
    *error = "column '" + spec + "' is missing its ':type' suffix";
    return false;
  }
  out->name = spec.substr(0, colon);
  std::string type = spec.substr(colon + 1);
  if (type == "int") {
    out->type = CellType::kInt;
  } else if (type == "double") {
    out->type = CellType::kDouble;
  } else if (type == "string") {
    out->type = CellType::kString;
  } else {
    *error = "unknown column type '" + type + "'";
    return false;
  }
  return true;
}

// Parsed-but-unregistered CSV content; shared by the Database and
// ShardedDatabase front-ends so both register byte-identical tables.
struct ParsedCsv {
  CsvResult status;
  std::vector<Column> columns;
  std::vector<std::vector<Cell>> rows;
  std::vector<double> probs;
};

ParsedCsv ParseCsv(std::istream& input) {
  ParsedCsv parsed;
  CsvResult& result = parsed.status;
  std::string line;
  if (!std::getline(input, line)) {
    result.error = "empty input";
    return parsed;
  }
  std::vector<std::string> header = SplitCsvLine(line);
  bool has_prob = !header.empty() && header.back() == "_prob";
  size_t num_columns = header.size() - (has_prob ? 1 : 0);
  if (num_columns == 0) {
    result.error = "header declares no data columns";
    return parsed;
  }
  std::vector<Column>& columns = parsed.columns;
  for (size_t i = 0; i < num_columns; ++i) {
    Column col;
    if (!ParseColumnSpec(header[i], &col, &result.error)) return parsed;
    columns.push_back(col);
  }

  std::vector<std::vector<Cell>>& rows = parsed.rows;
  std::vector<double>& probs = parsed.probs;
  size_t line_number = 1;
  while (std::getline(input, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitCsvLine(line);
    if (fields.size() != header.size()) {
      std::ostringstream out;
      out << "line " << line_number << ": expected " << header.size()
          << " fields, got " << fields.size();
      result.error = out.str();
      return parsed;
    }
    std::vector<Cell> cells;
    for (size_t i = 0; i < num_columns; ++i) {
      try {
        switch (columns[i].type) {
          case CellType::kInt:
            cells.push_back(Cell(static_cast<int64_t>(std::stoll(fields[i]))));
            break;
          case CellType::kDouble:
            cells.push_back(Cell(std::stod(fields[i])));
            break;
          case CellType::kString:
            cells.push_back(Cell(fields[i]));
            break;
          default:
            result.error = "unsupported column type";
            return parsed;
        }
      } catch (const std::exception&) {
        std::ostringstream out;
        out << "line " << line_number << ": cannot parse '" << fields[i]
            << "' for column " << columns[i].name;
        result.error = out.str();
        return parsed;
      }
    }
    double p = 1.0;
    if (has_prob) {
      try {
        p = std::stod(fields.back());
      } catch (const std::exception&) {
        std::ostringstream out;
        out << "line " << line_number << ": bad probability '"
            << fields.back() << "'";
        result.error = out.str();
        return parsed;
      }
      if (p < 0.0 || p > 1.0) {
        std::ostringstream out;
        out << "line " << line_number << ": probability " << p
            << " out of [0, 1]";
        result.error = out.str();
        return parsed;
      }
    }
    rows.push_back(std::move(cells));
    probs.push_back(p);
  }
  result.rows = rows.size();
  result.ok = true;
  return parsed;
}

}  // namespace

CsvResult LoadCsvTable(Database* db, const std::string& table_name,
                       std::istream& input) {
  ParsedCsv parsed = ParseCsv(input);
  if (!parsed.status.ok) return parsed.status;
  db->AddTupleIndependentTable(table_name, Schema(std::move(parsed.columns)),
                               std::move(parsed.rows),
                               std::move(parsed.probs));
  return parsed.status;
}

CsvResult LoadCsvTable(ShardedDatabase* db, const std::string& table_name,
                       std::istream& input) {
  ParsedCsv parsed = ParseCsv(input);
  if (!parsed.status.ok) return parsed.status;
  db->AddTupleIndependentTable(table_name, Schema(std::move(parsed.columns)),
                               std::move(parsed.rows),
                               std::move(parsed.probs));
  return parsed.status;
}

CsvResult LoadCsvTable(Coordinator* db, const std::string& table_name,
                       std::istream& input) {
  ParsedCsv parsed = ParseCsv(input);
  if (!parsed.status.ok) return parsed.status;
  db->AddTupleIndependentTable(table_name, Schema(std::move(parsed.columns)),
                               std::move(parsed.rows),
                               std::move(parsed.probs));
  return parsed.status;
}

CsvResult LoadCsvTableFromFile(Database* db, const std::string& table_name,
                               const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    CsvResult result;
    result.error = "cannot open file '" + path + "'";
    return result;
  }
  return LoadCsvTable(db, table_name, file);
}

CsvResult LoadCsvTableFromFile(ShardedDatabase* db,
                               const std::string& table_name,
                               const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    CsvResult result;
    result.error = "cannot open file '" + path + "'";
    return result;
  }
  return LoadCsvTable(db, table_name, file);
}

CsvResult LoadCsvTableFromFile(Coordinator* db, const std::string& table_name,
                               const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    CsvResult result;
    result.error = "cannot open file '" + path + "'";
    return result;
  }
  return LoadCsvTable(db, table_name, file);
}

bool WriteCsvTable(const Database& db, const PvcTable& table,
                   std::ostream& output) {
  for (const Column& c : table.schema().columns()) {
    if (c.type == CellType::kAggExpr) return false;
  }
  bool first = true;
  for (const Column& c : table.schema().columns()) {
    if (!first) output << ",";
    first = false;
    output << c.name << ":";
    switch (c.type) {
      case CellType::kInt:
        output << "int";
        break;
      case CellType::kDouble:
        output << "double";
        break;
      case CellType::kString:
        output << "string";
        break;
      default:
        output << "string";
        break;
    }
  }
  output << ",_prob\n";
  for (const Row& r : table.rows()) {
    // Exact per-tuple probability via the d-tree pipeline. The const_cast
    // is confined to the expression pool, which grows monotonically.
    Database& mutable_db = const_cast<Database&>(db);
    for (size_t i = 0; i < r.cells.size(); ++i) {
      if (i > 0) output << ",";
      const Cell& c = r.cells[i];
      if (c.type() == CellType::kString &&
          c.AsString().find(',') != std::string::npos) {
        output << '"' << c.AsString() << '"';
      } else {
        output << c.ToString();
      }
    }
    output << "," << mutable_db.TupleProbability(r) << "\n";
  }
  return true;
}

}  // namespace pvcdb
