// Point-in-time snapshots and crash recovery (the durability layer's
// upper half; the WAL is the lower half, src/engine/wal.h).
//
// A snapshot serializes an engine's complete logical state -- semiring,
// shard topology, the variable registry in creation order with current
// marginals, every base table with its row variables and routing key, and
// every registered view -- as a *rebuild script* of WAL ops. Restoring a
// snapshot replays that script through the engine's rebuild hooks, the
// exact replay shape whose bit-identity to a live mutated engine the IVM
// oracle (tests/ivm_test.cc) proves. Materialized view caches are not
// persisted: re-registering the views rebuilds step I results and step II
// caches from scratch, bit-identical to the never-crashed engine.
//
// DurableSession ties the two halves together. A durable directory holds
// one active generation g:
//
//   snapshot-0000000g       full state when the generation opened
//   wal-0000000g.log        every mutation since
//
// Recovery picks the newest generation whose snapshot validates, rebuilds
// the engine from it, truncates the WAL's torn tail (first bad length /
// CRC / payload), replays the surviving records, and resumes appending.
// Checkpoint() writes generation g+1 (tmp file + atomic rename), switches
// to a fresh WAL and deletes generation g -- a crash anywhere in between
// leaves at least one recoverable generation on disk.

#ifndef PVCDB_ENGINE_SNAPSHOT_H_
#define PVCDB_ENGINE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/engine/database.h"
#include "src/engine/shard.h"
#include "src/engine/wal.h"
#include "src/util/io.h"

namespace pvcdb {

class Coordinator;

/// An engine's complete logical state: topology plus the rebuild script
/// (kRegisterVariable ops in creation order, then kCreateTable per table,
/// then kRegisterView in registration order).
struct EngineState {
  SemiringKind semiring = SemiringKind::kBool;
  uint64_t num_shards = 0;  ///< 0 = single Database, else ShardedDatabase.
  std::vector<WalOp> ops;
  /// Server mode only: per-shard (end_lsn, end_chain) of the coordinator's
  /// mutation logs at capture time -- the durability position a caught-up
  /// worker holds. Recovery rebases the rebuilt logs here
  /// (Coordinator::RebaseShardLogs) so workers that survived the restart
  /// tail-resync across the checkpoint instead of taking a full rebuild.
  /// Empty for non-coordinator captures and for v1 (PVCSNP01) snapshots.
  std::vector<std::pair<uint64_t, uint32_t>> shard_tails;
};

/// Captures the engine's current logical state.
EngineState CaptureState(const Database& db);
EngineState CaptureState(const ShardedDatabase& db);
/// Server mode: the coordinator's replica plus its placement bookkeeping
/// (key columns, remote chain views) describe the full logical state.
EngineState CaptureState(const Coordinator& coordinator);

/// Applies one replayable op to exactly one engine (`db` or `sharded`
/// non-null). kReshard is a topology change and is handled by
/// DurableSession, not here.
void ApplyWalOp(const WalOp& op, Database* db, ShardedDatabase* sharded);

/// Serializes `state` into a self-validating snapshot file image
/// (magic + length + CRC32C + body).
std::string EncodeSnapshot(const EngineState& state);

/// Validates and decodes a snapshot file image; false when the image is
/// torn, corrupt or malformed (recovery then falls back to the previous
/// generation).
bool DecodeSnapshot(const std::string& data, EngineState* state);

struct DurableConfig {
  std::string dir;
  FileSystem* fs = nullptr;  ///< DefaultFileSystem() when null.
  bool sync = false;         ///< fsync after every WAL append / snapshot.
};

struct DurableStats {
  uint32_t generation = 0;
  bool recovered = false;       ///< Opened via Recover().
  bool tail_truncated = false;  ///< Recovery cut a torn WAL tail.
  uint64_t replayed_records = 0;
  uint64_t wal_records = 0;  ///< Including replayed ones.
  uint64_t wal_bytes = 0;
};

/// One durable engine: owns the Database *or* ShardedDatabase, the active
/// WAL writer, and the generation protocol of the directory.
class DurableSession {
 public:
  /// True when `dir` holds at least one snapshot file (valid or not).
  static bool HasState(FileSystem* fs, const std::string& dir);

  /// Starts a fresh durable directory at generation 0 holding `initial`
  /// (typically CaptureState of a live engine being made durable). Fails
  /// when the directory already holds state. nullptr + `*error` on failure.
  static std::unique_ptr<DurableSession> Create(const DurableConfig& config,
                                                const EngineState& initial,
                                                std::string* error);

  /// Recovers from an existing durable directory: newest valid snapshot,
  /// torn WAL tail truncated, surviving records replayed.
  static std::unique_ptr<DurableSession> Recover(const DurableConfig& config,
                                                 std::string* error);

  /// Attached mode (server durability): the session wraps an externally
  /// owned Coordinator instead of owning an engine. CreateAttached starts
  /// a fresh directory from the coordinator's current state (typically
  /// blank at server startup); RecoverAttached replays the newest snapshot
  /// + WAL tail INTO the coordinator (which must be freshly constructed)
  /// with its replay mode set, so nothing is sent to workers -- the server
  /// calls Coordinator::ReconcileWorkers afterwards. Topology is
  /// deployment configuration in this mode: Reshard() fails and recovered
  /// kReshard records are ignored (history re-partitions over the current
  /// worker set).
  static std::unique_ptr<DurableSession> CreateAttached(
      const DurableConfig& config, Coordinator* coordinator,
      std::string* error);
  static std::unique_ptr<DurableSession> RecoverAttached(
      const DurableConfig& config, Coordinator* coordinator,
      std::string* error);

  ~DurableSession();

  DurableSession(const DurableSession&) = delete;
  DurableSession& operator=(const DurableSession&) = delete;

  bool is_sharded() const { return sharded_ != nullptr; }
  Database* db() { return db_.get(); }
  ShardedDatabase* sharded() { return sharded_.get(); }
  bool attached() const { return attached_ != nullptr; }

  /// The active WAL writer (group-commit callers use WalWriter::Sync to
  /// batch fsyncs; see ServerConfig::group_commit_ms).
  WalWriter* wal() { return wal_.get(); }

  /// Writes generation g+1 (snapshot of the current state + fresh WAL) and
  /// deletes generation g. On failure the session keeps running on the old
  /// generation.
  bool Checkpoint(std::string* error);

  /// Logs a kReshard record and rebuilds the engine with `num_shards`
  /// shards (0 = single Database), preserving evaluation / compile options.
  /// Replayed on recovery, so the topology survives restarts.
  bool Reshard(uint64_t num_shards, std::string* error);

  DurableStats stats() const;
  const std::string& dir() const { return config_.dir; }

 private:
  explicit DurableSession(DurableConfig config);

  static std::unique_ptr<DurableSession> RecoverImpl(
      const DurableConfig& config, Coordinator* attached, std::string* error);

  std::string SnapshotPath(uint32_t generation) const;
  std::string WalPath(uint32_t generation) const;
  uint64_t CurrentShardCount() const;
  EngineState CaptureCurrent() const;
  /// Captures the current state and rebuilds it at `num_shards` shards,
  /// carrying the evaluation / compile options over.
  void RebuildTopology(uint64_t num_shards);
  /// Rebuilds db_/sharded_ from `state` (WAL detached during the rebuild).
  void BuildFromState(const EngineState& state);
  void AttachWal();
  bool WriteSnapshot(uint32_t generation, const EngineState& state,
                     std::string* error);
  /// Best-effort removal of all generation files except `keep`.
  void RemoveOtherGenerations(uint32_t keep);

  DurableConfig config_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<ShardedDatabase> sharded_;
  Coordinator* attached_ = nullptr;  ///< Externally owned (server mode).
  std::unique_ptr<WalWriter> wal_;
  uint32_t generation_ = 0;
  bool recovered_ = false;
  bool tail_truncated_ = false;
  uint64_t replayed_records_ = 0;
};

}  // namespace pvcdb

#endif  // PVCDB_ENGINE_SNAPSHOT_H_
