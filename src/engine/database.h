// The pvcdb engine facade: a database of named pvc-tables over one shared
// probability space, evaluating Q queries in the paper's two logical steps:
//   step I  (Section 4): [[.]] computes result tuples with semiring
//                        annotations and semimodule values;
//   step II (Section 5): probabilities via d-tree compilation.
// The Q0 / [[.]] / P(.) split of Experiment F maps to RunDeterministic(),
// Run(), and the probability methods respectively.

#ifndef PVCDB_ENGINE_DATABASE_H_
#define PVCDB_ENGINE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/dtree/approximate.h"
#include "src/dtree/compile.h"
#include "src/dtree/joint.h"
#include "src/dtree/probability.h"
#include "src/engine/view.h"
#include "src/expr/expr.h"
#include "src/prob/variable.h"
#include "src/query/ast.h"
#include "src/query/eval.h"
#include "src/table/pvc_table.h"

namespace pvcdb {

class WalWriter;
struct WalRecord;

/// The per-row step II pipeline used by every batch probability pass, in
/// Database and ShardedDatabase alike: clone the annotation from `source`
/// into a task-private pool, compile it, run the bottom-up probability
/// pass. Both facades must call this one function -- the sharded engine's
/// bit-identity contract depends on the pipelines not drifting apart.
/// `source` is only read, so concurrent calls against one pool are safe.
/// `intra_tree_threads` fans the probability pass across subtrees of this
/// one d-tree (EvalOptions::intra_tree_threads; bit-identical to serial
/// and automatically serial inside an outer parallel batch).
Distribution IsolatedAnnotationDistribution(const ExprPool& source,
                                            const VariableTable& variables,
                                            ExprId annotation,
                                            const CompileOptions& options,
                                            int intra_tree_threads = 0);

/// A probabilistic database: named pvc-tables + the variable table X + the
/// expression pool, plus query evaluation and probability computation.
class Database {
 public:
  explicit Database(SemiringKind semiring = SemiringKind::kBool);

  /// Load hook for multi-instance topologies (see src/engine/shard.h): a
  /// database whose variable registry is shared with other engine
  /// instances, so VarIds -- and hence correlations between annotations
  /// held by different instances -- stay globally scoped. The shared table
  /// must only be mutated while no instance is evaluating; the probability
  /// methods mark in-flight evaluations with VariableTable::EvalScope, and
  /// debug builds assert the contract on every mutation.
  Database(std::shared_ptr<VariableTable> variables, SemiringKind semiring);

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  ExprPool& pool() { return pool_; }
  const ExprPool& pool() const { return pool_; }
  VariableTable& variables() { return *variables_; }
  const VariableTable& variables() const { return *variables_; }
  /// The variable registry as a shareable handle (export hook for sharded
  /// catalogs that wire several databases over one probability space).
  const std::shared_ptr<VariableTable>& shared_variables() const {
    return variables_;
  }
  const Semiring& semiring() const { return pool_.semiring(); }

  /// D-tree compilation knobs used by the probability methods.
  CompileOptions& compile_options() { return compile_options_; }

  /// Durability hook (src/engine/wal.h): with a writer attached, every
  /// logical mutation appends one WAL record; an append failure fails the
  /// mutation's PVC_CHECK, so no mutation reports success without being
  /// durable. nullptr (the default) disables logging. Replay and rebuild
  /// paths run with the writer detached. The low-level hooks AddTable and
  /// AppendRowToTable are themselves replay targets and never log.
  void set_wal(WalWriter* wal) { wal_ = wal; }
  WalWriter* wal() const { return wal_; }

  /// Engine-wide evaluation knobs. Set `eval_options().num_threads` to fan
  /// query evaluation and the batch probability methods across threads;
  /// 0 (the default) keeps every path serial, so existing callers are
  /// unchanged. All parallel paths produce bit-identical results to the
  /// serial ones (see EvalOptions).
  EvalOptions& eval_options() { return eval_options_; }
  const EvalOptions& eval_options() const { return eval_options_; }

  // -- Catalog ------------------------------------------------------------

  /// Registers `table` under `name` (replacing any previous table).
  void AddTable(const std::string& name, PvcTable table);

  bool HasTable(const std::string& name) const;
  const PvcTable& table(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  /// Builds and registers a tuple-independent table: one fresh Bernoulli
  /// variable per row. `rows[i]` are the data cells, `probabilities[i]` is
  /// P[tuple i present].
  void AddTupleIndependentTable(const std::string& name, Schema schema,
                                std::vector<std::vector<Cell>> rows,
                                std::vector<double> probabilities);

  /// Rebuild / replication hook: registers a table whose row annotations
  /// are *existing* variables of the registry (`vars[i]` annotates row i).
  /// Together with replaying the variable registry in creation order, this
  /// reconstructs a mutated database's logical state from scratch with
  /// bit-identical downstream results (the IVM bit-identity contract of
  /// src/engine/view.h is verified against exactly this rebuild).
  void AddVariableAnnotatedTable(const std::string& name, Schema schema,
                                 std::vector<std::vector<Cell>> rows,
                                 const std::vector<VarId>& vars);

  // -- Mutations (the IVM delta engine, src/engine/view.h) ------------------
  //
  // Each mutation routes a TableDelta through the registered views, which
  // maintain their cached results incrementally (or mark themselves stale
  // when their plan cannot absorb the delta). Results stay bit-identical to
  // a from-scratch rebuild and re-evaluation on the final state.

  /// Appends a tuple with a fresh Bernoulli variable (P[present] = `p`).
  /// Cell types must match the schema. Returns the new row's index.
  size_t InsertTuple(const std::string& table, std::vector<Cell> cells,
                     double p);

  /// Low-level catalog hook: appends a row annotated with an existing
  /// expression (sharded catalogs re-intern a shared variable; see
  /// src/engine/shard.h). Routes the delta through the views.
  size_t AppendRowToTable(const std::string& table, std::vector<Cell> cells,
                          ExprId annotation);

  /// Removes the row at `row_index`; later rows shift down by one.
  void DeleteRowAt(const std::string& table, size_t row_index);

  /// Removes every row whose first-column cell equals `key`; returns the
  /// number of rows removed.
  size_t DeleteTuple(const std::string& table, const Cell& key);

  /// Replaces variable `var`'s distribution with Bernoulli(p). Step I
  /// results are unaffected (annotations are symbolic); cached step II
  /// results mentioning `var` are re-evaluated (same support) or dropped.
  void UpdateProbability(VarId var, double p);

  // -- Materialized views (src/engine/view.h) -------------------------------

  /// Registers (or replaces) a materialized view over `query`; evaluates
  /// it eagerly and returns the cached result.
  const PvcTable& RegisterView(const std::string& name, QueryPtr query);

  bool HasView(const std::string& name) const { return views_.Has(name); }
  void DropView(const std::string& name);
  std::vector<std::string> ViewNames() const { return views_.Names(); }

  /// The view's cached step I result (recomputed first when stale).
  const PvcTable& ViewTable(const std::string& name);

  /// Cached per-row P[Phi != 0_S] of the view, bit-identical to
  /// TupleProbabilities(ViewTable(name)).
  std::vector<double> ViewProbabilities(const std::string& name);

  /// Registry access for diagnostics (plan kinds, cache stats).
  const ViewRegistry& views() const { return views_; }

  // -- Step I: computing result tuples ------------------------------------

  /// Evaluates `q` with the [[.]] rewriting (Figure 4).
  PvcTable Run(const Query& q);

  /// Evaluates `q` on the deterministic database (the Q0 baseline): every
  /// tuple present, aggregates folded to constants.
  PvcTable RunDeterministic(const Query& q);

  // -- Step II: probability computation ------------------------------------

  /// P[Phi != 0_S] for the row's annotation: the probability that the tuple
  /// appears in a randomly drawn world.
  double TupleProbability(const Row& row);

  /// Distribution of the row's annotation (multiplicities under bag
  /// semantics; {0,1} under the Boolean semiring).
  Distribution AnnotationDistribution(const Row& row);

  // -- Batch step II: one result per row, fanned across threads -----------
  //
  // The batch methods process every row of `table`, compiling each row's
  // d-tree in a task-private expression pool and fanning rows across
  // eval_options().num_threads threads. Because the serial path (the
  // default) runs the identical per-row pipeline, results are bit-identical
  // for every thread count. The database must not be mutated concurrently.

  /// P[Phi != 0_S] for every row of `table`.
  std::vector<double> TupleProbabilities(const PvcTable& table);

  /// Annotation distribution of every row of `table`.
  std::vector<Distribution> AnnotationDistributions(const PvcTable& table);

  /// Interval bounds on P[Phi != 0_S] for every row of `table` under the
  /// given approximation budget (Boolean semiring only).
  std::vector<ProbabilityBounds> ApproximateTupleProbabilities(
      const PvcTable& table, ApproximateOptions options = ApproximateOptions());

  /// Distribution of the semimodule value in `column` (unconditioned).
  Distribution AggregateDistribution(const PvcTable& table, size_t row_index,
                                     const std::string& column);

  /// Distribution of the aggregate conditioned on the tuple being present:
  /// P[alpha = v | Phi != 0_S].
  Distribution ConditionalAggregateDistribution(const PvcTable& table,
                                                size_t row_index,
                                                const std::string& column);

  /// Joint distribution of all aggregation columns and the annotation of
  /// one result row (annotation last).
  JointDistribution RowJointDistribution(const PvcTable& table,
                                         size_t row_index);

 private:
  Distribution DistributionOfExpr(ExprId e);
  PvcTable& MutableTable(const std::string& name);
  ViewContext Context();

  ExprPool pool_;
  std::shared_ptr<VariableTable> variables_;
  std::map<std::string, PvcTable> tables_;
  CompileOptions compile_options_;
  EvalOptions eval_options_;
  ViewRegistry views_;
  WalWriter* wal_ = nullptr;
};

}  // namespace pvcdb

#endif  // PVCDB_ENGINE_DATABASE_H_
