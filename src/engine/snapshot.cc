#include "src/engine/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "src/engine/coordinator.h"
#include "src/util/check.h"
#include "src/util/codec.h"
#include "src/util/crc32c.h"
#include "src/util/metrics.h"

namespace pvcdb {
namespace {

// v2 prepends the per-shard (end_lsn, end_chain) tails to the op script;
// v1 snapshots (no tails) still decode, they just cost surviving workers a
// full resync after the restart.
constexpr char kSnapshotMagic[] = "PVCSNP02";
constexpr char kSnapshotMagicV1[] = "PVCSNP01";
constexpr size_t kMagicSize = 8;
constexpr size_t kHeaderSize = 16;  // magic + u32 body_len + u32 crc.

std::string GenerationSuffix(uint32_t generation) {
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "%08u", generation);
  return buffer;
}

bool ParseGeneration(const std::string& name, const std::string& prefix,
                     const std::string& suffix, uint32_t* generation) {
  if (name.size() != prefix.size() + 8 + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(prefix.size() + 8, suffix.size(), suffix) != 0) {
    return false;
  }
  uint32_t g = 0;
  for (size_t i = prefix.size(); i < prefix.size() + 8; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    g = g * 10 + static_cast<uint32_t>(name[i] - '0');
  }
  *generation = g;
  return true;
}

bool ParseSnapshotName(const std::string& name, uint32_t* generation) {
  return ParseGeneration(name, "snapshot-", "", generation);
}

bool ParseWalName(const std::string& name, uint32_t* generation) {
  return ParseGeneration(name, "wal-", ".log", generation);
}

void SetError(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

void CaptureVariables(const VariableTable& variables,
                      std::vector<WalOp>* ops) {
  for (VarId id = 0; id < variables.size(); ++id) {
    ops->push_back(WalOp::RegisterVariable(variables.NameOf(id),
                                           variables.DistributionOf(id)));
  }
}

std::vector<std::vector<Cell>> RowCells(const PvcTable& table) {
  std::vector<std::vector<Cell>> rows;
  rows.reserve(table.NumRows());
  for (const Row& row : table.rows()) rows.push_back(row.cells);
  return rows;
}

std::vector<VarId> RowVariables(const ExprPool& pool, const PvcTable& table) {
  std::vector<VarId> vars;
  vars.reserve(table.NumRows());
  for (const Row& row : table.rows()) {
    const ExprNode& node = pool.node(row.annotation);
    PVC_CHECK_MSG(node.kind == ExprKind::kVar,
                  "only variable-annotated base-table rows are durable");
    vars.push_back(node.var());
  }
  return vars;
}

}  // namespace

EngineState CaptureState(const Database& db) {
  EngineState state;
  state.semiring = db.pool().semiring().kind();
  state.num_shards = 0;
  CaptureVariables(db.variables(), &state.ops);
  for (const std::string& name : db.TableNames()) {
    const PvcTable& table = db.table(name);
    state.ops.push_back(WalOp::CreateTable(name, table.schema(), "",
                                           RowCells(table),
                                           RowVariables(db.pool(), table)));
  }
  for (const std::string& name : db.ViewNames()) {
    state.ops.push_back(WalOp::RegisterView(name, db.views().view(name).query()));
  }
  return state;
}

EngineState CaptureState(const ShardedDatabase& db) {
  EngineState state;
  state.semiring = db.coordinator().pool().semiring().kind();
  state.num_shards = db.num_shards();
  CaptureVariables(db.variables(), &state.ops);
  for (const std::string& name : db.TableNames()) {
    const PvcTable& table = db.coordinator().table(name);
    state.ops.push_back(WalOp::CreateTable(
        name, table.schema(), db.KeyColumnName(name), RowCells(table),
        RowVariables(db.coordinator().pool(), table)));
  }
  for (const auto& [name, query] : db.ViewCatalog()) {
    state.ops.push_back(WalOp::RegisterView(name, query));
  }
  return state;
}

EngineState CaptureState(const Coordinator& coordinator) {
  EngineState state;
  state.semiring = coordinator.local().pool().semiring().kind();
  state.num_shards = coordinator.num_shards();
  CaptureVariables(coordinator.local().variables(), &state.ops);
  for (const std::string& name : coordinator.TableNames()) {
    const PvcTable& table = coordinator.local().table(name);
    state.ops.push_back(WalOp::CreateTable(
        name, table.schema(), coordinator.KeyColumnName(name),
        RowCells(table), RowVariables(coordinator.local().pool(), table)));
  }
  for (const auto& [name, query] : coordinator.ViewCatalog()) {
    state.ops.push_back(WalOp::RegisterView(name, query));
  }
  // Record where the shard logs end: recovery rebases its rebuilt logs to
  // these positions so surviving workers keep their tail-resync proof.
  state.shard_tails = coordinator.ShardTails();
  return state;
}

void ApplyWalOp(const WalOp& op, Database* db, ShardedDatabase* sharded) {
  PVC_CHECK_MSG((db == nullptr) != (sharded == nullptr),
                "replay needs exactly one engine");
  switch (op.type) {
    case WalOpType::kRegisterVariable: {
      VariableTable& variables =
          db != nullptr ? db->variables() : sharded->variables();
      VarId id = variables.Add(op.distribution, op.name);
      // Intern the variable in creation order -- the rebuild contract the
      // IVM oracle verifies (and what a live engine does on insert).
      ExprPool& pool =
          db != nullptr ? db->pool() : sharded->coordinator().pool();
      pool.Var(id);
      return;
    }
    case WalOpType::kCreateTable:
      if (db != nullptr) {
        db->AddVariableAnnotatedTable(op.name, op.schema, op.rows, op.vars);
      } else {
        sharded->AddVariableAnnotatedTable(op.name, op.schema, op.rows,
                                           op.vars, op.key_column);
      }
      return;
    case WalOpType::kInsertRow:
      if (db != nullptr) {
        PVC_CHECK_MSG(op.var < db->variables().size(),
                      "kInsertRow references unknown variable " << op.var);
        db->AppendRowToTable(op.name, op.cells, db->pool().Var(op.var));
      } else {
        sharded->AppendRowToTable(op.name, op.cells, op.var);
      }
      return;
    case WalOpType::kDeleteRow:
      if (db != nullptr) {
        db->DeleteRowAt(op.name, static_cast<size_t>(op.row_index));
      } else {
        sharded->DeleteRowAt(op.name, static_cast<size_t>(op.row_index));
      }
      return;
    case WalOpType::kUpdateProbability:
      if (db != nullptr) {
        db->UpdateProbability(op.var, op.probability);
      } else {
        sharded->UpdateProbability(op.var, op.probability);
      }
      return;
    case WalOpType::kRegisterView:
      if (db != nullptr) {
        db->RegisterView(op.name, op.query);
      } else {
        sharded->RegisterView(op.name, op.query);
      }
      return;
    case WalOpType::kDropView:
      if (db != nullptr) {
        db->DropView(op.name);
      } else {
        sharded->DropView(op.name);
      }
      return;
    case WalOpType::kReshard:
      break;
  }
  PVC_FAIL("kReshard is a topology change handled by DurableSession");
}

std::string EncodeSnapshot(const EngineState& state) {
  std::string body;
  EncodeU8(&body, static_cast<uint8_t>(state.semiring));
  EncodeU64(&body, state.num_shards);
  EncodeU64(&body, state.shard_tails.size());
  for (const auto& [lsn, chain] : state.shard_tails) {
    EncodeU64(&body, lsn);
    EncodeU32(&body, chain);
  }
  body += EncodeWalOps(state.ops);
  std::string out(kSnapshotMagic, kMagicSize);
  EncodeU32(&out, static_cast<uint32_t>(body.size()));
  EncodeU32(&out, Crc32c(body));
  out += body;
  return out;
}

bool DecodeSnapshot(const std::string& data, EngineState* state) {
  if (data.size() < kHeaderSize) return false;
  bool v1 = data.compare(0, kMagicSize, kSnapshotMagicV1, kMagicSize) == 0;
  if (!v1 && data.compare(0, kMagicSize, kSnapshotMagic, kMagicSize) != 0) {
    return false;
  }
  ByteReader header(data.data() + kMagicSize, 8);
  uint32_t body_len = header.ReadU32();
  uint32_t crc = header.ReadU32();
  if (kHeaderSize + static_cast<uint64_t>(body_len) != data.size()) {
    return false;
  }
  std::string body = data.substr(kHeaderSize);
  if (Crc32c(body) != crc) return false;
  ByteReader reader(body);
  uint8_t semiring = reader.ReadU8();
  if (semiring > static_cast<uint8_t>(SemiringKind::kNatural)) return false;
  state->semiring = static_cast<SemiringKind>(semiring);
  state->num_shards = reader.ReadU64();
  state->shard_tails.clear();
  if (!v1) {
    uint64_t tails = reader.ReadU64();
    if (!reader.ok() || tails > (1u << 20)) return false;
    state->shard_tails.reserve(static_cast<size_t>(tails));
    for (uint64_t i = 0; i < tails; ++i) {
      uint64_t lsn = reader.ReadU64();
      uint32_t chain = reader.ReadU32();
      state->shard_tails.emplace_back(lsn, chain);
    }
  }
  if (!reader.ok()) return false;
  if (!DecodeWalOps(body.substr(reader.position()), &state->ops)) {
    return false;
  }
  for (const WalOp& op : state->ops) {
    if (op.type == WalOpType::kReshard) return false;
  }
  return true;
}

DurableSession::DurableSession(DurableConfig config)
    : config_(std::move(config)) {}

DurableSession::~DurableSession() {
  if (db_ != nullptr) db_->set_wal(nullptr);
  if (sharded_ != nullptr) sharded_->set_wal(nullptr);
  if (attached_ != nullptr) attached_->set_wal(nullptr);
}

std::string DurableSession::SnapshotPath(uint32_t generation) const {
  return JoinPath(config_.dir, "snapshot-" + GenerationSuffix(generation));
}

std::string DurableSession::WalPath(uint32_t generation) const {
  return JoinPath(config_.dir, "wal-" + GenerationSuffix(generation) + ".log");
}

uint64_t DurableSession::CurrentShardCount() const {
  if (attached_ != nullptr) return attached_->num_shards();
  return sharded_ != nullptr ? sharded_->num_shards() : 0;
}

EngineState DurableSession::CaptureCurrent() const {
  if (attached_ != nullptr) return CaptureState(*attached_);
  return db_ != nullptr ? CaptureState(*db_) : CaptureState(*sharded_);
}

void DurableSession::BuildFromState(const EngineState& state) {
  if (attached_ != nullptr) {
    // Attached mode replays INTO the externally owned (freshly
    // constructed) coordinator; the snapshot's recorded shard count is
    // deliberately ignored -- topology is deployment configuration.
    for (const WalOp& op : state.ops) attached_->ApplyRecoveredOp(op);
    return;
  }
  db_.reset();
  sharded_.reset();
  if (state.num_shards == 0) {
    db_ = std::make_unique<Database>(state.semiring);
  } else {
    sharded_ = std::make_unique<ShardedDatabase>(
        static_cast<size_t>(state.num_shards), state.semiring);
  }
  for (const WalOp& op : state.ops) {
    ApplyWalOp(op, db_.get(), sharded_.get());
  }
}

void DurableSession::AttachWal() {
  if (db_ != nullptr) db_->set_wal(wal_.get());
  if (sharded_ != nullptr) sharded_->set_wal(wal_.get());
  if (attached_ != nullptr) attached_->set_wal(wal_.get());
}

bool DurableSession::WriteSnapshot(uint32_t generation,
                                   const EngineState& state,
                                   std::string* error) {
  std::string image = EncodeSnapshot(state);
  std::string path = SnapshotPath(generation);
  std::string tmp = path + ".tmp";
  if (config_.fs->FileExists(tmp)) config_.fs->Remove(tmp, nullptr);
  std::unique_ptr<WritableFile> file = config_.fs->OpenForAppend(tmp, error);
  if (file == nullptr) return false;
  if (!file->Append(image.data(), image.size()) || !file->Close()) {
    SetError(error, "cannot write snapshot '" + tmp + "'");
    return false;
  }
  // Publish atomically: a crash before the rename leaves only the tmp
  // file, which recovery ignores.
  return config_.fs->Rename(tmp, path, error);
}

void DurableSession::RemoveOtherGenerations(uint32_t keep) {
  for (const std::string& name : config_.fs->ListDir(config_.dir)) {
    uint32_t generation = 0;
    bool matched = ParseSnapshotName(name, &generation) ||
                   ParseWalName(name, &generation);
    bool debris = name.size() > 4 &&
                  name.compare(name.size() - 4, 4, ".tmp") == 0;
    if ((matched && generation != keep) || debris) {
      config_.fs->Remove(JoinPath(config_.dir, name), nullptr);
    }
  }
}

bool DurableSession::HasState(FileSystem* fs, const std::string& dir) {
  for (const std::string& name : fs->ListDir(dir)) {
    uint32_t generation = 0;
    if (ParseSnapshotName(name, &generation)) return true;
  }
  return false;
}

std::unique_ptr<DurableSession> DurableSession::Create(
    const DurableConfig& config, const EngineState& initial,
    std::string* error) {
  DurableConfig cfg = config;
  if (cfg.fs == nullptr) cfg.fs = DefaultFileSystem();
  if (!cfg.fs->CreateDir(cfg.dir, error)) return nullptr;
  if (HasState(cfg.fs, cfg.dir)) {
    SetError(error, "'" + cfg.dir +
                        "' already holds a durable database; recover it "
                        "instead of creating over it");
    return nullptr;
  }
  std::unique_ptr<DurableSession> session(new DurableSession(cfg));
  if (!session->WriteSnapshot(0, initial, error)) return nullptr;
  session->BuildFromState(initial);
  std::string wal_path = session->WalPath(0);
  if (cfg.fs->FileExists(wal_path)) cfg.fs->Remove(wal_path, nullptr);
  session->wal_ = WalWriter::Open(cfg.fs, wal_path, 0, 0, cfg.sync, error);
  if (session->wal_ == nullptr) return nullptr;
  session->AttachWal();
  return session;
}

std::unique_ptr<DurableSession> DurableSession::CreateAttached(
    const DurableConfig& config, Coordinator* coordinator,
    std::string* error) {
  DurableConfig cfg = config;
  if (cfg.fs == nullptr) cfg.fs = DefaultFileSystem();
  if (!cfg.fs->CreateDir(cfg.dir, error)) return nullptr;
  if (HasState(cfg.fs, cfg.dir)) {
    SetError(error, "'" + cfg.dir +
                        "' already holds a durable database; recover it "
                        "instead of creating over it");
    return nullptr;
  }
  std::unique_ptr<DurableSession> session(new DurableSession(cfg));
  session->attached_ = coordinator;
  // The coordinator IS the live engine: snapshot its current state (blank
  // at a fresh server start), no rebuild needed.
  if (!session->WriteSnapshot(0, CaptureState(*coordinator), error)) {
    return nullptr;
  }
  std::string wal_path = session->WalPath(0);
  if (cfg.fs->FileExists(wal_path)) cfg.fs->Remove(wal_path, nullptr);
  session->wal_ = WalWriter::Open(cfg.fs, wal_path, 0, 0, cfg.sync, error);
  if (session->wal_ == nullptr) return nullptr;
  session->AttachWal();
  return session;
}

std::unique_ptr<DurableSession> DurableSession::Recover(
    const DurableConfig& config, std::string* error) {
  return RecoverImpl(config, nullptr, error);
}

std::unique_ptr<DurableSession> DurableSession::RecoverAttached(
    const DurableConfig& config, Coordinator* coordinator,
    std::string* error) {
  return RecoverImpl(config, coordinator, error);
}

std::unique_ptr<DurableSession> DurableSession::RecoverImpl(
    const DurableConfig& config, Coordinator* attached, std::string* error) {
  DurableConfig cfg = config;
  if (cfg.fs == nullptr) cfg.fs = DefaultFileSystem();

  // Newest generation whose snapshot validates wins. An invalid newer
  // snapshot (torn checkpoint) falls back to the previous generation,
  // whose WAL still holds everything.
  std::vector<uint32_t> generations;
  for (const std::string& name : cfg.fs->ListDir(cfg.dir)) {
    uint32_t generation = 0;
    if (ParseSnapshotName(name, &generation)) {
      generations.push_back(generation);
    }
  }
  std::sort(generations.rbegin(), generations.rend());
  std::unique_ptr<DurableSession> session(new DurableSession(cfg));
  bool found = false;
  EngineState state;
  for (uint32_t generation : generations) {
    std::string data;
    if (!cfg.fs->ReadFile(session->SnapshotPath(generation), &data,
                          nullptr)) {
      continue;
    }
    if (DecodeSnapshot(data, &state)) {
      session->generation_ = generation;
      found = true;
      break;
    }
  }
  if (!found) {
    SetError(error, "no valid snapshot found in '" + cfg.dir + "'");
    return nullptr;
  }
  session->recovered_ = true;
  session->attached_ = attached;
  // Attached replay suppresses worker sends: the logs rebuild exactly as a
  // never-crashed coordinator's would, and ReconcileWorkers squares any
  // surviving workers up against them afterwards.
  if (attached != nullptr) attached->BeginReplay();
  session->BuildFromState(state);
  if (attached != nullptr && !state.shard_tails.empty()) {
    // Re-anchor the rebuilt shard logs at the positions the snapshot's live
    // workers held, BEFORE the WAL tail replays on top: the tail's entries
    // then extend the logs with continuous (lsn, chain) history, and
    // workers that survived the restart prove a (possibly empty) tail
    // instead of taking a full resync across the checkpoint. No-op when
    // the recorded tail count does not match the current topology.
    attached->RebaseShardLogs(state.shard_tails);
  }

  std::string wal_path = session->WalPath(session->generation_);
  WalReadResult wal = ReadWal(cfg.fs, wal_path);
  if (!wal.error.empty()) {
    if (attached != nullptr) attached->EndReplay();
    SetError(error, wal.error);
    return nullptr;
  }
  uint64_t valid_bytes = wal.magic_valid ? wal.valid_bytes : 0;
  if (wal.file_exists && wal.torn_tail) {
    // Cut the torn record (or torn magic) so the file is a pure prefix of
    // whole records again before we append to it.
    if (!cfg.fs->Truncate(wal_path, valid_bytes, error)) {
      if (attached != nullptr) attached->EndReplay();
      return nullptr;
    }
    session->tail_truncated_ = true;
  }
  for (const WalRecord& record : wal.records) {
    for (const WalOp& op : record.ops) {
      if (op.type == WalOpType::kReshard) {
        // Attached mode ignores recorded topology (deployment config);
        // the replayed history re-partitions over the current workers.
        if (attached == nullptr) session->RebuildTopology(op.num_shards);
      } else if (attached != nullptr) {
        attached->ApplyRecoveredOp(op);
      } else {
        ApplyWalOp(op, session->db_.get(), session->sharded_.get());
      }
    }
  }
  if (attached != nullptr) attached->EndReplay();
  session->replayed_records_ = wal.records.size();
  PVCDB_COUNTER_ADD("wal.recovery_replayed_records", wal.records.size());
  session->wal_ = WalWriter::Open(cfg.fs, wal_path, valid_bytes,
                                  wal.records.size(), cfg.sync, error);
  if (session->wal_ == nullptr) return nullptr;
  session->AttachWal();
  session->RemoveOtherGenerations(session->generation_);
  return session;
}

void DurableSession::RebuildTopology(uint64_t num_shards) {
  EngineState state = CaptureCurrent();
  state.num_shards = num_shards;
  EvalOptions eval =
      db_ != nullptr ? db_->eval_options() : sharded_->eval_options();
  CompileOptions compile =
      db_ != nullptr ? db_->compile_options() : sharded_->compile_options();
  BuildFromState(state);
  (db_ != nullptr ? db_->eval_options() : sharded_->eval_options()) = eval;
  (db_ != nullptr ? db_->compile_options() : sharded_->compile_options()) =
      compile;
}

bool DurableSession::Reshard(uint64_t num_shards, std::string* error) {
  if (attached_ != nullptr) {
    SetError(error,
             "reshard is unavailable in server mode (topology is "
             "deployment configuration)");
    return false;
  }
  if (num_shards == CurrentShardCount()) return true;
  WalRecord record;
  record.ops.push_back(WalOp::Reshard(num_shards));
  if (!wal_->Append(record)) {
    SetError(error, "WAL append to '" + wal_->path() + "' failed");
    return false;
  }
  RebuildTopology(num_shards);
  AttachWal();
  return true;
}

bool DurableSession::Checkpoint(std::string* error) {
  EngineState state = CaptureCurrent();
  uint32_t next = generation_ + 1;
  if (!WriteSnapshot(next, state, error)) return false;
  std::string wal_path = WalPath(next);
  if (config_.fs->FileExists(wal_path)) config_.fs->Remove(wal_path, nullptr);
  std::unique_ptr<WalWriter> next_wal =
      WalWriter::Open(config_.fs, wal_path, 0, 0, config_.sync, error);
  if (next_wal == nullptr) return false;
  wal_ = std::move(next_wal);
  AttachWal();
  generation_ = next;
  recovered_ = false;
  tail_truncated_ = false;
  replayed_records_ = 0;
  RemoveOtherGenerations(next);
  return true;
}

DurableStats DurableSession::stats() const {
  DurableStats stats;
  stats.generation = generation_;
  stats.recovered = recovered_;
  stats.tail_truncated = tail_truncated_;
  stats.replayed_records = replayed_records_;
  stats.wal_records = wal_ != nullptr ? wal_->records() : 0;
  stats.wal_bytes = wal_ != nullptr ? wal_->bytes() : 0;
  return stats;
}

}  // namespace pvcdb
