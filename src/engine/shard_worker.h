// The shard worker: the out-of-process counterpart of one inner Database
// shard of ShardedDatabase (src/engine/shard.h), serving the wire protocol
// of src/net/protocol.h over one coordinator connection.
//
// A worker holds exactly the state an in-process shard holds -- a Database
// with its partition tables (rows annotated by re-interned shared
// variables), a replica of the shared VariableTable (replayed in Add order
// through kSyncVars, so ids line up by construction), the
// provenance-extended partitions of tables serving distributed plans, and
// per-shard chain views with their step II caches. Every computation runs
// the identical code paths the in-process shard runs:
//
//  - kEvalChain mirrors ShardedDatabase::EvalDistributed's scatter half: a
//    QueryEvaluator over the partition extended with the hidden
//    kShardRowIdColumn, surviving rows reported with their global driving
//    row, annotation variable, and a probability from
//    IsolatedAnnotationDistribution -- the single per-row step II pipeline
//    both facades share, which clones into a task-private pool and is
//    therefore independent of this worker's pool history. That is the
//    whole bit-identity argument: the coordinator's merge of these rows
//    equals the in-process scatter-gather bit for bit.
//  - kAppendRow / kDeleteRow mirror RouteAppendedRow / DeleteRowAt
//    (including the broadcast global-row shift on deletes), and chain
//    views absorb deltas through the same EvalChainOnSingleRow pipeline as
//    ShardedDatabase::ApplyShardedViewInsert.
//  - kViewProbs serves cached per-row view probabilities from a
//    StepTwoCache exactly like ShardedDatabase::ViewProbabilities' per-
//    shard passes, with kUpdateVar driving the same refresh-or-drop rule.
//
// A worker never crashes its connection on bad input: malformed payloads
// and failed engine invariants (CheckError) become kError replies.
//
// Durability plane (protocol v2): the worker tracks an (lsn, chain) pair
// over every state-mutating request it applies -- lsn counts applied
// mutations, chain is a running CRC32C over (kind, payload digest). The
// coordinator keeps the same pair per shard in its in-memory log, so after
// a coordinator restart kReplayTail can prove the worker's state is a
// prefix of the log and kShipWal replays just the missing tail; any
// mismatch falls back to kReset + full resync, which is always correct.

#ifndef PVCDB_ENGINE_SHARD_WORKER_H_
#define PVCDB_ENGINE_SHARD_WORKER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/engine/database.h"
#include "src/net/protocol.h"
#include "src/net/socket.h"

namespace pvcdb {

/// One shard's serving state and request handlers. Construct from the
/// coordinator's kHello, then either drive Serve() on a connected socket
/// or feed Handle() directly (the unit-test hook).
class ShardWorker {
 public:
  explicit ShardWorker(const HelloMsg& hello);

  /// Outcome of a Serve() loop.
  enum class ServeStatus : uint8_t {
    kShutdown,      ///< Coordinator sent kShutdown; reply was sent.
    kDisconnected,  ///< Peer closed the connection.
    kProtocolError, ///< Corrupt frame or transport error; connection dead.
  };

  /// Request/reply loop: one frame in, one frame out, until shutdown or
  /// disconnect.
  ServeStatus Serve(Socket* sock);

  /// Handles one decoded frame, producing the reply frame. Never throws:
  /// engine failures become kError replies. Returns false only for
  /// kShutdown (reply still valid; the caller stops serving).
  bool Handle(MsgKind kind, const std::string& payload, MsgKind* reply_kind,
              std::string* reply_payload);

  /// Accepts coordinator connections on `address` until a kShutdown
  /// arrives (standalone worker process mode, `pvcdb_server --worker`).
  /// The worker state *persists across connections*: a reconnecting
  /// coordinator whose kHello matches the previous session (semiring,
  /// shard index, shard count) finds the applied state still there and can
  /// resync with a kReplayTail/kShipWal tail replay instead of a full
  /// retransfer; a mismatched kHello gets a fresh blank worker. Returns 0,
  /// or 1 on a listen failure.
  static int RunStandalone(const std::string& address, bool quiet);

  /// Applied-mutation position (the kTailInfo pair); test hooks.
  uint64_t lsn() const { return lsn_; }
  uint32_t chain() const { return chain_; }

  /// True when `kind` is a state-mutating request the durability chain
  /// covers (the set the coordinator logs and ships).
  static bool IsLoggedMutation(MsgKind kind);

  /// Advances `chain` by one applied entry: the exact formula both sides
  /// of kReplayTail must share.
  static uint32_t NextChain(uint32_t chain, MsgKind kind,
                            const std::string& payload);

 private:
  struct TableState {
    std::vector<int64_t> global;  ///< Global row id per local row.
    bool augmented_valid = false;
    PvcTable augmented{Schema{}};  ///< Partition + provenance column.
  };

  /// Worker half of ShardedDatabase::ShardedView: this shard's partition
  /// of a chain view's result.
  struct WorkerView {
    std::string name;
    std::string driving;
    QueryPtr query;
    Schema schema;  ///< Output schema (provenance column stripped).
    PvcTable part{Schema{}};
    std::vector<int64_t> global;
    StepTwoCache cache;
  };

  void HandleSyncVars(const SyncVarsMsg& msg);
  void HandleUpdateVar(const UpdateVarMsg& msg);
  uint64_t HandleLoadPartition(const LoadPartitionMsg& msg);
  void HandleAppendRow(const AppendRowMsg& msg);
  void HandleDeleteRow(const DeleteRowMsg& msg);
  ChainResultMsg HandleEvalChain(const EvalChainMsg& msg);
  ProbsResultMsg HandleTableProbs(const TableProbsMsg& msg);
  uint64_t HandleRegisterChainView(RegisterChainViewMsg msg);
  ChainResultMsg HandleViewProbs(const std::string& name);
  ViewInfoMsg HandleViewInfo(const std::string& name);

  /// The partition extended with kShardRowIdColumn (built lazily, kept
  /// across queries, extended in place on appends, invalidated on deletes
  /// and reloads -- mirroring ShardedDatabase::AugmentedPartitionsOf).
  const PvcTable& AugmentedPartition(const std::string& table);

  /// Evaluates the chain over the augmented partition and strips the
  /// provenance column: the scatter half of EvalDistributed for this one
  /// shard. Fills `schema`, `part`, `global`.
  void EvalChainParts(const Query& q, const std::string& table,
                      Schema* schema, PvcTable* part,
                      std::vector<int64_t>* global);

  WorkerView* FindView(const std::string& name);
  void SeedView(WorkerView* view);
  void ApplyViewInsert(WorkerView* view, int64_t global_row,
                       const std::vector<Cell>& cells, ExprId annotation);
  void ApplyViewDelete(WorkerView* view, int64_t global_row);

  TableState& StateOf(const std::string& table);

  /// Drops every table, view, variable and the (lsn, chain) position:
  /// kReset, the precondition of a full resync.
  void ResetState();

  /// True when a reconnecting coordinator's hello describes this worker's
  /// configuration (standalone reuse check).
  bool MatchesHello(const HelloMsg& hello) const;

  std::unique_ptr<Database> db_;
  SemiringKind semiring_ = SemiringKind::kBool;
  uint32_t shard_index_ = 0;
  uint32_t num_shards_ = 1;
  std::map<std::string, TableState> tables_;
  std::vector<std::unique_ptr<WorkerView>> views_;
  uint64_t lsn_ = 0;
  uint32_t chain_ = 0;
};

}  // namespace pvcdb

#endif  // PVCDB_ENGINE_SHARD_WORKER_H_
