#include "src/expr/print.h"

#include <sstream>

#include "src/util/check.h"

namespace pvcdb {

namespace {

// Precedence levels for parenthesisation: sum < product < atom.
enum Precedence { kSumPrec = 0, kProdPrec = 1, kAtomPrec = 2 };

class Printer {
 public:
  Printer(const ExprPool& pool, const VariableTable* variables)
      : pool_(pool), variables_(variables) {}

  void Print(ExprId e, int parent_prec, std::ostream& out) {
    const ExprNode& n = pool_.node(e);
    switch (n.kind) {
      case ExprKind::kVar:
        out << (variables_ != nullptr ? variables_->NameOf(n.var())
                                      : "x" + std::to_string(n.var()));
        return;
      case ExprKind::kConstS:
        out << n.value;
        return;
      case ExprKind::kConstM:
        out << MonoidValueToString(n.value);
        return;
      case ExprKind::kAddS: {
        bool paren = parent_prec > kSumPrec;
        if (paren) out << "(";
        bool first = true;
        for (ExprId c : n.children()) {
          if (!first) out << " + ";
          first = false;
          Print(c, kSumPrec + 1, out);
        }
        if (paren) out << ")";
        return;
      }
      case ExprKind::kMulS: {
        bool paren = parent_prec > kProdPrec;
        if (paren) out << "(";
        bool first = true;
        for (ExprId c : n.children()) {
          if (!first) out << "*";
          first = false;
          Print(c, kProdPrec + 1, out);
        }
        if (paren) out << ")";
        return;
      }
      case ExprKind::kTensor: {
        bool paren = parent_prec > kProdPrec;
        if (paren) out << "(";
        Print(n.child(0), kProdPrec + 1, out);
        out << " (x) ";
        Print(n.child(1), kProdPrec + 1, out);
        if (paren) out << ")";
        return;
      }
      case ExprKind::kAddM: {
        bool paren = parent_prec > kSumPrec;
        if (paren) out << "(";
        bool first = true;
        for (ExprId c : n.children()) {
          if (!first) out << " +" << AggKindName(n.agg) << " ";
          first = false;
          Print(c, kSumPrec + 1, out);
        }
        if (paren) out << ")";
        return;
      }
      case ExprKind::kCmp: {
        out << "[";
        Print(n.child(0), kSumPrec, out);
        out << " " << CmpOpName(n.cmp) << " ";
        Print(n.child(1), kSumPrec, out);
        out << "]";
        return;
      }
    }
    PVC_FAIL("unknown expression kind");
  }

 private:
  const ExprPool& pool_;
  const VariableTable* variables_;
};

}  // namespace

std::string ExprToString(const ExprPool& pool, ExprId e,
                         const VariableTable* variables) {
  std::ostringstream out;
  Printer printer(pool, variables);
  printer.Print(e, kSumPrec, out);
  return out.str();
}

}  // namespace pvcdb
