#include "src/expr/eval.h"

#include "src/util/check.h"

namespace pvcdb {

namespace {

class Evaluator {
 public:
  Evaluator(const ExprPool& pool, const Valuation& nu)
      : pool_(pool), nu_(nu) {}

  int64_t Eval(ExprId e) {
    auto it = memo_.find(e);
    if (it != memo_.end()) return it->second;
    const ExprNode& n = pool_.node(e);
    const Semiring& semiring = pool_.semiring();
    int64_t result = 0;
    switch (n.kind) {
      case ExprKind::kVar:
        result = semiring.Canonical(nu_(n.var()));
        break;
      case ExprKind::kConstS:
      case ExprKind::kConstM:
        result = n.value;
        break;
      case ExprKind::kAddS: {
        result = semiring.Zero();
        for (ExprId c : n.children) result = semiring.Plus(result, Eval(c));
        break;
      }
      case ExprKind::kMulS: {
        result = semiring.One();
        for (ExprId c : n.children) result = semiring.Times(result, Eval(c));
        break;
      }
      case ExprKind::kAddM: {
        Monoid monoid(n.agg);
        result = monoid.Neutral();
        for (ExprId c : n.children) result = monoid.Plus(result, Eval(c));
        break;
      }
      case ExprKind::kTensor: {
        Monoid monoid(n.agg);
        result = monoid.Tensor(semiring, Eval(n.children[0]),
                               Eval(n.children[1]));
        break;
      }
      case ExprKind::kCmp: {
        bool holds = EvalCmp(n.cmp, Eval(n.children[0]), Eval(n.children[1]));
        result = holds ? semiring.One() : semiring.Zero();
        break;
      }
    }
    memo_.emplace(e, result);
    return result;
  }

 private:
  const ExprPool& pool_;
  const Valuation& nu_;
  std::unordered_map<ExprId, int64_t> memo_;
};

}  // namespace

int64_t EvalExpr(const ExprPool& pool, ExprId e, const Valuation& nu) {
  Evaluator evaluator(pool, nu);
  return evaluator.Eval(e);
}

int64_t EvalExpr(const ExprPool& pool, ExprId e,
                 const std::unordered_map<VarId, int64_t>& nu) {
  return EvalExpr(pool, e, [&nu](VarId x) {
    auto it = nu.find(x);
    PVC_CHECK_MSG(it != nu.end(), "valuation missing variable " << x);
    return it->second;
  });
}

}  // namespace pvcdb
