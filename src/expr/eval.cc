#include "src/expr/eval.h"

#include <unordered_map>
#include <vector>

#include "src/util/check.h"

namespace pvcdb {

namespace {

// Iterative bottom-up evaluation, safe on arbitrarily deep expressions.
// The memo is a hash map so one evaluation costs O(reachable nodes), not
// O(pool prefix) -- EvalExpr runs once per Monte-Carlo sample / per
// enumerated world, typically on small expressions inside large pools.
class Evaluator {
 public:
  Evaluator(const ExprPool& pool, const Valuation& nu)
      : pool_(pool), nu_(nu) {}

  int64_t Eval(ExprId root) {
    std::unordered_map<ExprId, int64_t> memo;
    std::vector<ExprId> stack = {root};
    const Semiring& semiring = pool_.semiring();
    while (!stack.empty()) {
      ExprId id = stack.back();
      if (memo.count(id) > 0) {
        stack.pop_back();
        continue;
      }
      const ExprNode& n = pool_.node(id);
      Span<ExprId> kids = n.children();
      bool ready = true;
      for (size_t i = kids.size(); i-- > 0;) {
        if (memo.count(kids[i]) == 0) {
          stack.push_back(kids[i]);
          ready = false;
        }
      }
      if (!ready) continue;
      int64_t result = 0;
      switch (n.kind) {
        case ExprKind::kVar:
          result = semiring.Canonical(nu_(n.var()));
          break;
        case ExprKind::kConstS:
        case ExprKind::kConstM:
          result = n.value;
          break;
        case ExprKind::kAddS: {
          result = semiring.Zero();
          for (ExprId c : kids) result = semiring.Plus(result, memo[c]);
          break;
        }
        case ExprKind::kMulS: {
          result = semiring.One();
          for (ExprId c : kids) result = semiring.Times(result, memo[c]);
          break;
        }
        case ExprKind::kAddM: {
          Monoid monoid(n.agg);
          result = monoid.Neutral();
          for (ExprId c : kids) result = monoid.Plus(result, memo[c]);
          break;
        }
        case ExprKind::kTensor: {
          Monoid monoid(n.agg);
          result = monoid.Tensor(semiring, memo[kids[0]], memo[kids[1]]);
          break;
        }
        case ExprKind::kCmp: {
          bool holds = EvalCmp(n.cmp, memo[kids[0]], memo[kids[1]]);
          result = holds ? semiring.One() : semiring.Zero();
          break;
        }
      }
      memo.emplace(id, result);
      stack.pop_back();
    }
    return memo[root];
  }

 private:
  const ExprPool& pool_;
  const Valuation& nu_;
};

}  // namespace

int64_t EvalExpr(const ExprPool& pool, ExprId e, const Valuation& nu) {
  Evaluator evaluator(pool, nu);
  return evaluator.Eval(e);
}

int64_t EvalExpr(const ExprPool& pool, ExprId e,
                 const std::unordered_map<VarId, int64_t>& nu) {
  return EvalExpr(pool, e, [&nu](VarId x) {
    auto it = nu.find(x);
    PVC_CHECK_MSG(it != nu.end(), "valuation missing variable " << x);
    return it->second;
  });
}

}  // namespace pvcdb
