// Evaluation of expressions under a valuation nu : X -> S.
//
// This implements the semiring / monoid homomorphisms of Section 3: a
// mapping of the variables extends uniquely to a homomorphism evaluating
// semiring expressions into S and semimodule expressions into M, with
// conditional expressions evaluating to 0_S / 1_S (Eq. 2).

#ifndef PVCDB_EXPR_EVAL_H_
#define PVCDB_EXPR_EVAL_H_

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "src/expr/expr.h"

namespace pvcdb {

/// A total valuation of variables into semiring values.
using Valuation = std::function<int64_t(VarId)>;

/// Evaluates `e` under `nu`. Semiring-sorted expressions evaluate to S
/// values, monoid-sorted expressions to M values.
int64_t EvalExpr(const ExprPool& pool, ExprId e, const Valuation& nu);

/// Convenience overload for map-backed valuations; missing variables are an
/// error (checked).
int64_t EvalExpr(const ExprPool& pool, ExprId e,
                 const std::unordered_map<VarId, int64_t>& nu);

}  // namespace pvcdb

#endif  // PVCDB_EXPR_EVAL_H_
