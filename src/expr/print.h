// Human-readable rendering of semiring / semimodule expressions, in the
// notation of the paper: sums "a + b", products "a*b", tensors "a (x) m",
// monoid sums "a +MIN b", conditions "[alpha <= 50]".

#ifndef PVCDB_EXPR_PRINT_H_
#define PVCDB_EXPR_PRINT_H_

#include <string>

#include "src/expr/expr.h"
#include "src/prob/variable.h"

namespace pvcdb {

/// Renders `e`; variable names come from `variables` when provided,
/// otherwise variables print as "x<id>".
std::string ExprToString(const ExprPool& pool, ExprId e,
                         const VariableTable* variables = nullptr);

}  // namespace pvcdb

#endif  // PVCDB_EXPR_PRINT_H_
