// Semiring and semimodule expressions (the grammar of Figure 2).
//
// Expressions annotate tuples of pvc-tables and encode aggregation values:
//
//   Phi ::= x | Phi + Phi | Phi * Phi | [alpha theta alpha] |
//           [Phi theta Phi] | s                     (semiring expressions K)
//   alpha ::= Phi (x) m {+op Phi (x) m} | m         (semimodule expressions)
//
// Expressions are immutable nodes interned in an ExprPool (hash-consing):
// structurally equal subexpressions share one id, which makes syntactic
// independence tests, substitution (Eq. 10) and memoised compilation cheap.
//
// Smart constructors apply the semiring/semimodule laws of Definitions 3/4:
// sums and products are flattened and canonically sorted (commutativity +
// associativity, cf. Remark 2), neutral elements are dropped, annihilators
// short-circuit, constants fold, and nested tensors merge via
// (s1 * s2) (x) m = s1 (x) (s2 (x) m). Under the Boolean semiring the
// idempotent laws x + x = x and x * x = x of PosBool(X) are applied too.

#ifndef PVCDB_EXPR_EXPR_H_
#define PVCDB_EXPR_EXPR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/algebra/monoid.h"
#include "src/algebra/semiring.h"
#include "src/prob/variable.h"

namespace pvcdb {

/// Identifier of an expression node within an ExprPool.
using ExprId = uint32_t;

/// Sentinel for "no expression".
inline constexpr ExprId kInvalidExpr = static_cast<ExprId>(-1);

/// Node kinds of the expression grammar (Figure 2).
enum class ExprKind : uint8_t {
  kVar,     ///< A random variable x in X (semiring-valued).
  kConstS,  ///< A semiring constant s in S.
  kAddS,    ///< n-ary semiring sum Phi_1 + ... + Phi_n.
  kMulS,    ///< n-ary semiring product Phi_1 * ... * Phi_n.
  kConstM,  ///< A monoid constant m in M (tagged with its AggKind).
  kTensor,  ///< Phi (x) alpha -- semiring expression acting on a monoid one.
  kAddM,    ///< n-ary monoid sum alpha_1 +op ... +op alpha_n.
  kCmp,     ///< Conditional expression [lhs theta rhs]; evaluates into S.
};

/// Whether a node denotes a semiring value (K) or a monoid value (K (x) M).
enum class ExprSort : uint8_t { kSemiring, kMonoid };

/// One immutable expression node. Nodes are owned by an ExprPool and
/// referred to by ExprId; `children` refer to nodes in the same pool.
struct ExprNode {
  ExprKind kind;
  ExprSort sort;
  AggKind agg = AggKind::kSum;  ///< Monoid of monoid-sorted nodes.
  CmpOp cmp = CmpOp::kEq;       ///< Operator of kCmp nodes.
  int64_t value = 0;            ///< Constant value, or VarId for kVar.
  std::vector<ExprId> children;
  std::vector<VarId> vars;  ///< Sorted distinct variables below this node.
  uint64_t hash = 0;

  /// The variable of a kVar node.
  VarId var() const { return static_cast<VarId>(value); }

  /// True when no random variable occurs below this node.
  bool IsGround() const { return vars.empty(); }
};

/// Arena + hash-consing factory for expression DAGs.
///
/// The pool is parameterised by the target semiring S (SemiringKind),
/// because constant folding must use S's operations: e.g. 1 + x folds to 1
/// under B (absorption of OR by true) but not under N.
class ExprPool {
 public:
  explicit ExprPool(SemiringKind kind = SemiringKind::kBool);

  ExprPool(const ExprPool&) = delete;
  ExprPool& operator=(const ExprPool&) = delete;

  const Semiring& semiring() const { return semiring_; }

  // -- Smart constructors -------------------------------------------------

  /// The variable x as a semiring expression.
  ExprId Var(VarId x);

  /// Semiring constant s (canonicalised into the carrier).
  ExprId ConstS(int64_t s);

  /// Semiring sum of `terms` (flattens, sorts, folds constants; the empty
  /// sum is 0_S). All terms must be semiring-sorted.
  ExprId AddS(std::vector<ExprId> terms);

  /// Binary convenience overload.
  ExprId AddS(ExprId a, ExprId b) { return AddS(std::vector<ExprId>{a, b}); }

  /// Semiring product of `factors` (flattens, sorts, folds; the empty
  /// product is 1_S; 0_S annihilates).
  ExprId MulS(std::vector<ExprId> factors);

  /// Binary convenience overload.
  ExprId MulS(ExprId a, ExprId b) { return MulS(std::vector<ExprId>{a, b}); }

  /// Monoid constant m of aggregation monoid `agg`.
  ExprId ConstM(AggKind agg, int64_t m);

  /// Tensor term `s_expr (x) m_expr`. `s_expr` must be semiring-sorted and
  /// `m_expr` monoid-sorted. Applies 0_S (x) m = 0_M, 1_S (x) m = m,
  /// s (x) 0_M = 0_M, and merges nested tensors.
  ExprId Tensor(ExprId s_expr, ExprId m_expr);

  /// Monoid sum over monoid `agg` (flattens same-monoid sums, folds
  /// constants, drops neutral elements; the empty sum is 0_M).
  ExprId AddM(AggKind agg, std::vector<ExprId> terms);

  /// Binary convenience overload.
  ExprId AddM(AggKind agg, ExprId a, ExprId b) {
    return AddM(agg, std::vector<ExprId>{a, b});
  }

  /// Conditional expression [lhs theta rhs]; lhs and rhs must have the same
  /// sort (their monoids may differ, cf. Experiment E). Folds when both
  /// sides are constants. The result is semiring-sorted (Eq. 2).
  ExprId Cmp(CmpOp op, ExprId lhs, ExprId rhs);

  // -- Node access --------------------------------------------------------

  const ExprNode& node(ExprId id) const;

  /// Total number of distinct nodes interned so far.
  size_t NumNodes() const { return nodes_.size(); }

  /// Sorted distinct variables occurring in `id`.
  const std::vector<VarId>& VarsOf(ExprId id) const { return node(id).vars; }

  /// True when the node is a constant (kConstS or kConstM).
  bool IsConst(ExprId id) const;

  // -- Transformations ----------------------------------------------------

  /// The expression Phi|x<-s of Eq. (10): every occurrence of variable `x`
  /// replaced by the semiring constant `s`, with eager simplification.
  /// Returns `e` unchanged when x does not occur in it.
  ExprId Substitute(ExprId e, VarId x, int64_t s);

  /// Re-interns the expression DAG rooted at `e` into `dst` (which must use
  /// the same semiring kind) and returns the clone's id there. Shared
  /// subexpressions stay shared. `this` is only read, so one source pool
  /// may be cloned from concurrently into *distinct* destination pools --
  /// this is what lets independent tuples compile in parallel against
  /// task-private pools. Note that `dst`'s ids (and hence the canonical
  /// child order of re-built sums/products) generally differ from the
  /// source pool's.
  ExprId CloneInto(ExprPool* dst, ExprId e) const;

  /// Counts syntactic occurrences of each variable in `e`, weighting shared
  /// subexpressions by the number of DAG paths that reach them (this equals
  /// the occurrence count in the fully expanded expression tree). Counts
  /// are doubles to tolerate path-count blowup.
  void CountVarOccurrences(ExprId e,
                           std::unordered_map<VarId, double>* counts) const;

  /// Number of nodes reachable from `e` (distinct DAG nodes).
  size_t ReachableSize(ExprId e) const;

 private:
  ExprId Intern(ExprNode node);
  static std::vector<VarId> MergeVars(const std::vector<ExprId>& children,
                                      const std::vector<ExprNode>& nodes);
  uint64_t NodeHash(const ExprNode& node) const;
  bool NodeEquals(const ExprNode& a, const ExprNode& b) const;

  Semiring semiring_;
  std::vector<ExprNode> nodes_;
  std::unordered_map<uint64_t, std::vector<ExprId>> intern_table_;
};

/// Sort of the expression (`kSemiring` for annotations and conditions,
/// `kMonoid` for aggregation values).
inline ExprSort SortOf(const ExprNode& node) { return node.sort; }

}  // namespace pvcdb

#endif  // PVCDB_EXPR_EXPR_H_
