// Semiring and semimodule expressions (the grammar of Figure 2).
//
// Expressions annotate tuples of pvc-tables and encode aggregation values:
//
//   Phi ::= x | Phi + Phi | Phi * Phi | [alpha theta alpha] |
//           [Phi theta Phi] | s                     (semiring expressions K)
//   alpha ::= Phi (x) m {+op Phi (x) m} | m         (semimodule expressions)
//
// Expressions are immutable nodes interned in an ExprPool (hash-consing):
// structurally equal subexpressions share one id, which makes syntactic
// independence tests, substitution (Eq. 10) and memoised compilation cheap.
//
// Smart constructors apply the semiring/semimodule laws of Definitions 3/4:
// sums and products are flattened and canonically sorted (commutativity +
// associativity, cf. Remark 2), neutral elements are dropped, annihilators
// short-circuit, constants fold, and nested tensors merge via
// (s1 * s2) (x) m = s1 (x) (s2 (x) m). Under the Boolean semiring the
// idempotent laws x + x = x and x * x = x of PosBool(X) are applied too.
//
// Storage layout (the step II hot path): nodes are fixed-size headers in
// one std::vector; child lists and variable sets live as spans into shared
// StableArena buffers, with lists of <= 2 items inlined into the node
// itself -- no per-node heap allocation. The intern table is a linear-probe
// open-addressing index over node ids. Arena runs never move, so child/var
// spans of *arena-backed* lists stay valid while the pool grows; spans of
// inlined lists point into the node vector and are invalidated by interning
// (copy the ExprNode header first -- the copy carries its inline items).
// Transformation kernels (Substitute, CloneInto) are iterative with dense
// id-indexed memo tables: no recursion depth limit, no hashing per node.

#ifndef PVCDB_EXPR_EXPR_H_
#define PVCDB_EXPR_EXPR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/algebra/monoid.h"
#include "src/algebra/semiring.h"
#include "src/prob/variable.h"
#include "src/util/span.h"

namespace pvcdb {

/// Identifier of an expression node within an ExprPool.
using ExprId = uint32_t;

/// Sentinel for "no expression".
inline constexpr ExprId kInvalidExpr = static_cast<ExprId>(-1);

/// Node kinds of the expression grammar (Figure 2).
enum class ExprKind : uint8_t {
  kVar,     ///< A random variable x in X (semiring-valued).
  kConstS,  ///< A semiring constant s in S.
  kAddS,    ///< n-ary semiring sum Phi_1 + ... + Phi_n.
  kMulS,    ///< n-ary semiring product Phi_1 * ... * Phi_n.
  kConstM,  ///< A monoid constant m in M (tagged with its AggKind).
  kTensor,  ///< Phi (x) alpha -- semiring expression acting on a monoid one.
  kAddM,    ///< n-ary monoid sum alpha_1 +op ... +op alpha_n.
  kCmp,     ///< Conditional expression [lhs theta rhs]; evaluates into S.
};

/// Whether a node denotes a semiring value (K) or a monoid value (K (x) M).
enum class ExprSort : uint8_t { kSemiring, kMonoid };

/// One immutable expression node: a fixed-size header whose child list and
/// variable set are either inlined (<= 2 items) or spans into the owning
/// pool's arenas. Nodes are owned by an ExprPool and referred to by ExprId;
/// children refer to nodes in the same pool.
///
/// Lifetime rule: children()/vars() of an *inlined* list point into this
/// very object. A reference obtained from ExprPool::node() is therefore
/// invalidated by the next interning (the node vector may reallocate), but
/// a *by-value copy* of the node keeps its spans valid -- inline items
/// travel with the copy and arena runs never move.
struct ExprNode {
  static constexpr uint32_t kInlineChildren = 2;
  static constexpr uint32_t kInlineVars = 2;

  ExprKind kind = ExprKind::kConstS;
  ExprSort sort = ExprSort::kSemiring;
  AggKind agg = AggKind::kSum;  ///< Monoid of monoid-sorted nodes.
  CmpOp cmp = CmpOp::kEq;       ///< Operator of kCmp nodes.
  uint32_t num_children = 0;
  uint32_t num_vars = 0;
  int64_t value = 0;  ///< Constant value, or VarId for kVar.
  uint64_t hash = 0;
  union {
    ExprId inline_children_[kInlineChildren];
    const ExprId* children_ptr_;
  };
  union {
    VarId inline_vars_[kInlineVars];
    const VarId* vars_ptr_;
  };

  ExprNode() : children_ptr_(nullptr), vars_ptr_(nullptr) {}

  /// Child expression ids, in canonical order.
  Span<ExprId> children() const {
    return {num_children <= kInlineChildren ? inline_children_ : children_ptr_,
            num_children};
  }

  /// Sorted distinct variables below this node.
  Span<VarId> vars() const {
    return {num_vars <= kInlineVars ? inline_vars_ : vars_ptr_, num_vars};
  }

  /// The i-th child.
  ExprId child(size_t i) const { return children()[i]; }

  /// The variable of a kVar node.
  VarId var() const { return static_cast<VarId>(value); }

  /// True when no random variable occurs below this node.
  bool IsGround() const { return num_vars == 0; }
};

/// Arena + hash-consing factory for expression DAGs.
///
/// The pool is parameterised by the target semiring S (SemiringKind),
/// because constant folding must use S's operations: e.g. 1 + x folds to 1
/// under B (absorption of OR by true) but not under N.
///
/// Thread-safety: the mutating smart constructors and Substitute require
/// external serialization (one compiling thread per pool); the const
/// accessors and CloneInto only read `this` and may run concurrently.
class ExprPool {
 public:
  explicit ExprPool(SemiringKind kind = SemiringKind::kBool);

  ExprPool(const ExprPool&) = delete;
  ExprPool& operator=(const ExprPool&) = delete;

  const Semiring& semiring() const { return semiring_; }

  // -- Smart constructors -------------------------------------------------

  /// The variable x as a semiring expression.
  ExprId Var(VarId x);

  /// Semiring constant s (canonicalised into the carrier).
  ExprId ConstS(int64_t s);

  /// Semiring sum of `terms` (flattens, sorts, folds constants; the empty
  /// sum is 0_S). All terms must be semiring-sorted.
  ExprId AddS(const std::vector<ExprId>& terms) {
    return AddSRange(terms.data(), terms.size());
  }

  /// Binary convenience overload (allocation-free).
  ExprId AddS(ExprId a, ExprId b) {
    ExprId terms[2] = {a, b};
    return AddSRange(terms, 2);
  }

  /// Semiring product of `factors` (flattens, sorts, folds; the empty
  /// product is 1_S; 0_S annihilates).
  ExprId MulS(const std::vector<ExprId>& factors) {
    return MulSRange(factors.data(), factors.size());
  }

  /// Binary convenience overload (allocation-free).
  ExprId MulS(ExprId a, ExprId b) {
    ExprId factors[2] = {a, b};
    return MulSRange(factors, 2);
  }

  /// Monoid constant m of aggregation monoid `agg`.
  ExprId ConstM(AggKind agg, int64_t m);

  /// Tensor term `s_expr (x) m_expr`. `s_expr` must be semiring-sorted and
  /// `m_expr` monoid-sorted. Applies 0_S (x) m = 0_M, 1_S (x) m = m,
  /// s (x) 0_M = 0_M, and merges nested tensors.
  ExprId Tensor(ExprId s_expr, ExprId m_expr);

  /// Monoid sum over monoid `agg` (flattens same-monoid sums, folds
  /// constants, drops neutral elements; the empty sum is 0_M).
  ExprId AddM(AggKind agg, const std::vector<ExprId>& terms) {
    return AddMRange(agg, terms.data(), terms.size());
  }

  /// Binary convenience overload (allocation-free).
  ExprId AddM(AggKind agg, ExprId a, ExprId b) {
    ExprId terms[2] = {a, b};
    return AddMRange(agg, terms, 2);
  }

  /// Conditional expression [lhs theta rhs]; lhs and rhs must have the same
  /// sort (their monoids may differ, cf. Experiment E). Folds when both
  /// sides are constants. The result is semiring-sorted (Eq. 2).
  ExprId Cmp(CmpOp op, ExprId lhs, ExprId rhs);

  /// Range-based entry points behind the std::vector overloads above.
  ExprId AddSRange(const ExprId* terms, size_t n);
  ExprId MulSRange(const ExprId* factors, size_t n);
  ExprId AddMRange(AggKind agg, const ExprId* terms, size_t n);

  // -- Node access --------------------------------------------------------

  /// Header of node `id`. The reference is invalidated by the next
  /// interning; copy the (small, trivially copyable) node when constructors
  /// may run -- the copy's children()/vars() spans stay valid.
  const ExprNode& node(ExprId id) const;

  /// Total number of distinct nodes interned so far.
  size_t NumNodes() const { return nodes_.size(); }

  /// Sorted distinct variables occurring in `id`. Arena-backed (> 2 vars)
  /// spans survive pool growth; inlined ones follow the node() lifetime
  /// rule above.
  Span<VarId> VarsOf(ExprId id) const { return node(id).vars(); }

  /// True when the node is a constant (kConstS or kConstM).
  bool IsConst(ExprId id) const;

  // -- Transformations ----------------------------------------------------

  /// The expression Phi|x<-s of Eq. (10): every occurrence of variable `x`
  /// replaced by the semiring constant `s`, with eager simplification.
  /// Returns `e` unchanged when x does not occur in it. Iterative: safe on
  /// arbitrarily deep expressions.
  ExprId Substitute(ExprId e, VarId x, int64_t s);

  /// Re-interns the expression DAG rooted at `e` into `dst` (which must use
  /// the same semiring kind) and returns the clone's id there. Shared
  /// subexpressions stay shared. `this` is only read, so one source pool
  /// may be cloned from concurrently into *distinct* destination pools --
  /// this is what lets independent tuples compile in parallel against
  /// task-private pools. The destination pre-reserves node and intern-table
  /// capacity from the source's size, so a clone into a fresh pool performs
  /// no intermediate reallocation. Note that `dst`'s ids (and hence the
  /// canonical child order of re-built sums/products) generally differ from
  /// the source pool's.
  ExprId CloneInto(ExprPool* dst, ExprId e) const;

  /// Pre-sizes the node vector and intern table for `additional_nodes` more
  /// interned nodes (CloneInto calls this with the source pool's size).
  void Reserve(size_t additional_nodes);

  /// Counts syntactic occurrences of each variable in `e`, weighting shared
  /// subexpressions by the number of DAG paths that reach them (this equals
  /// the occurrence count in the fully expanded expression tree). Counts
  /// are doubles to tolerate path-count blowup.
  void CountVarOccurrences(ExprId e,
                           std::unordered_map<VarId, double>* counts) const;

  /// Number of nodes reachable from `e` (distinct DAG nodes).
  size_t ReachableSize(ExprId e) const;

 private:
  /// Interns the canonical node (kind, sort, agg, cmp, value, children):
  /// probes the open-addressing table, and on a miss stores the child list
  /// and the merged variable set (inline or in the arenas).
  ExprId Intern(ExprKind kind, ExprSort sort, AggKind agg, CmpOp cmp,
                int64_t value, const ExprId* children, uint32_t num_children);

  /// Fills the new node's variable set from its children (sorted union).
  void FillVars(ExprNode* node, const ExprId* children, uint32_t n);

  /// Stores `vars` (sorted distinct) into the node, inline or via arena.
  void StoreVars(ExprNode* node, const VarId* vars, uint32_t n);

  void Rehash(size_t new_size);

  static uint64_t NodeHash(ExprKind kind, ExprSort sort, AggKind agg,
                           CmpOp cmp, int64_t value, const ExprId* children,
                           uint32_t num_children);

  Semiring semiring_;
  std::vector<ExprNode> nodes_;
  detail::StableArena<ExprId> child_arena_;
  detail::StableArena<VarId> var_arena_;

  /// Open-addressing intern index: power-of-two slot array of node ids
  /// (kEmptySlot when free), linear probing on the node hash.
  std::vector<uint32_t> table_;
  size_t table_used_ = 0;

  // Reusable scratch for the smart constructors (never live across a
  // nested constructor call) and the epoch-stamped Substitute memo.
  std::vector<ExprId> scratch_flat_;
  std::vector<ExprId> scratch_rest_;
  std::vector<VarId> scratch_vars_;
  std::vector<ExprId> subst_memo_;
  std::vector<uint32_t> subst_stamp_;
  uint32_t subst_epoch_ = 0;
  std::vector<ExprId> subst_stack_;
};

/// Sort of the expression (`kSemiring` for annotations and conditions,
/// `kMonoid` for aggregation values).
inline ExprSort SortOf(const ExprNode& node) { return node.sort; }

}  // namespace pvcdb

#endif  // PVCDB_EXPR_EXPR_H_
