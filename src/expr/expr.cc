#include "src/expr/expr.h"

#include <algorithm>
#include <utility>

#include "src/util/check.h"
#include "src/util/hash.h"

namespace pvcdb {

namespace {

// Distinct salts per node kind keep hashes of different kinds apart.
uint64_t KindSalt(ExprKind kind) {
  return 0x517cc1b727220a95ULL * (static_cast<uint64_t>(kind) + 1);
}

}  // namespace

ExprPool::ExprPool(SemiringKind kind) : semiring_(kind) {}

const ExprNode& ExprPool::node(ExprId id) const {
  PVC_CHECK_MSG(id < nodes_.size(), "invalid expression id " << id);
  return nodes_[id];
}

bool ExprPool::IsConst(ExprId id) const {
  ExprKind k = node(id).kind;
  return k == ExprKind::kConstS || k == ExprKind::kConstM;
}

uint64_t ExprPool::NodeHash(const ExprNode& n) const {
  uint64_t h = KindSalt(n.kind);
  h = HashCombine(h, static_cast<uint64_t>(n.sort));
  h = HashCombine(h, static_cast<uint64_t>(n.agg));
  h = HashCombine(h, static_cast<uint64_t>(n.cmp));
  h = HashCombine(h, std::hash<int64_t>()(n.value));
  for (ExprId c : n.children) h = HashCombine(h, c);
  return h;
}

bool ExprPool::NodeEquals(const ExprNode& a, const ExprNode& b) const {
  return a.kind == b.kind && a.sort == b.sort && a.agg == b.agg &&
         a.cmp == b.cmp && a.value == b.value && a.children == b.children;
}

ExprId ExprPool::Intern(ExprNode n) {
  n.hash = NodeHash(n);
  auto& bucket = intern_table_[n.hash];
  for (ExprId id : bucket) {
    if (NodeEquals(nodes_[id], n)) return id;
  }
  // Compute the variable set once, on interning.
  switch (n.kind) {
    case ExprKind::kVar:
      n.vars = {n.var()};
      break;
    case ExprKind::kConstS:
    case ExprKind::kConstM:
      break;
    default: {
      n.vars = MergeVars(n.children, nodes_);
      break;
    }
  }
  ExprId id = static_cast<ExprId>(nodes_.size());
  nodes_.push_back(std::move(n));
  bucket.push_back(id);
  return id;
}

std::vector<VarId> ExprPool::MergeVars(const std::vector<ExprId>& children,
                                       const std::vector<ExprNode>& nodes) {
  std::vector<VarId> merged;
  for (ExprId c : children) {
    const std::vector<VarId>& cv = nodes[c].vars;
    std::vector<VarId> tmp;
    tmp.reserve(merged.size() + cv.size());
    std::set_union(merged.begin(), merged.end(), cv.begin(), cv.end(),
                   std::back_inserter(tmp));
    merged = std::move(tmp);
  }
  return merged;
}

ExprId ExprPool::Var(VarId x) {
  ExprNode n;
  n.kind = ExprKind::kVar;
  n.sort = ExprSort::kSemiring;
  n.value = static_cast<int64_t>(x);
  return Intern(std::move(n));
}

ExprId ExprPool::ConstS(int64_t s) {
  ExprNode n;
  n.kind = ExprKind::kConstS;
  n.sort = ExprSort::kSemiring;
  n.value = semiring_.Canonical(s);
  return Intern(std::move(n));
}

ExprId ExprPool::AddS(std::vector<ExprId> terms) {
  // Flatten nested sums.
  std::vector<ExprId> flat;
  flat.reserve(terms.size());
  for (ExprId t : terms) {
    const ExprNode& tn = node(t);
    PVC_CHECK_MSG(tn.sort == ExprSort::kSemiring,
                  "AddS requires semiring-sorted terms");
    if (tn.kind == ExprKind::kAddS) {
      flat.insert(flat.end(), tn.children.begin(), tn.children.end());
    } else {
      flat.push_back(t);
    }
  }
  // Fold constants; keep non-constants.
  int64_t const_sum = semiring_.Zero();
  std::vector<ExprId> rest;
  rest.reserve(flat.size());
  for (ExprId t : flat) {
    const ExprNode& tn = node(t);
    if (tn.kind == ExprKind::kConstS) {
      const_sum = semiring_.Plus(const_sum, tn.value);
    } else {
      rest.push_back(t);
    }
  }
  // Boolean absorption: 1 + Phi = 1.
  if (semiring_.kind() == SemiringKind::kBool && const_sum != 0) {
    return ConstS(1);
  }
  std::sort(rest.begin(), rest.end());
  if (semiring_.kind() == SemiringKind::kBool) {
    // Idempotence of OR in PosBool(X): x + x = x.
    rest.erase(std::unique(rest.begin(), rest.end()), rest.end());
  }
  if (const_sum != semiring_.Zero()) {
    rest.push_back(ConstS(const_sum));
    std::sort(rest.begin(), rest.end());
  }
  if (rest.empty()) return ConstS(semiring_.Zero());
  if (rest.size() == 1) return rest.front();
  ExprNode n;
  n.kind = ExprKind::kAddS;
  n.sort = ExprSort::kSemiring;
  n.children = std::move(rest);
  return Intern(std::move(n));
}

ExprId ExprPool::MulS(std::vector<ExprId> factors) {
  std::vector<ExprId> flat;
  flat.reserve(factors.size());
  for (ExprId f : factors) {
    const ExprNode& fn = node(f);
    PVC_CHECK_MSG(fn.sort == ExprSort::kSemiring,
                  "MulS requires semiring-sorted factors");
    if (fn.kind == ExprKind::kMulS) {
      flat.insert(flat.end(), fn.children.begin(), fn.children.end());
    } else {
      flat.push_back(f);
    }
  }
  int64_t const_prod = semiring_.One();
  std::vector<ExprId> rest;
  rest.reserve(flat.size());
  for (ExprId f : flat) {
    const ExprNode& fn = node(f);
    if (fn.kind == ExprKind::kConstS) {
      const_prod = semiring_.Times(const_prod, fn.value);
    } else {
      rest.push_back(f);
    }
  }
  if (const_prod == semiring_.Zero()) return ConstS(semiring_.Zero());
  std::sort(rest.begin(), rest.end());
  if (semiring_.kind() == SemiringKind::kBool) {
    // Idempotence of AND in PosBool(X): x * x = x.
    rest.erase(std::unique(rest.begin(), rest.end()), rest.end());
  }
  if (const_prod != semiring_.One()) {
    rest.push_back(ConstS(const_prod));
    std::sort(rest.begin(), rest.end());
  }
  if (rest.empty()) return ConstS(semiring_.One());
  if (rest.size() == 1) return rest.front();
  ExprNode n;
  n.kind = ExprKind::kMulS;
  n.sort = ExprSort::kSemiring;
  n.children = std::move(rest);
  return Intern(std::move(n));
}

ExprId ExprPool::ConstM(AggKind agg, int64_t m) {
  ExprNode n;
  n.kind = ExprKind::kConstM;
  n.sort = ExprSort::kMonoid;
  n.agg = agg;
  n.value = m;
  return Intern(std::move(n));
}

ExprId ExprPool::Tensor(ExprId s_expr, ExprId m_expr) {
  const ExprNode& sn = node(s_expr);
  const ExprNode& mn = node(m_expr);
  PVC_CHECK_MSG(sn.sort == ExprSort::kSemiring,
                "Tensor left operand must be semiring-sorted");
  PVC_CHECK_MSG(mn.sort == ExprSort::kMonoid,
                "Tensor right operand must be monoid-sorted");
  AggKind agg = mn.agg;
  Monoid monoid(agg);
  // s (x) 0_M = 0_M.
  if (mn.kind == ExprKind::kConstM && mn.value == monoid.Neutral()) {
    return m_expr;
  }
  if (sn.kind == ExprKind::kConstS) {
    // 0_S (x) m = 0_M; 1_S (x) m = m.
    if (sn.value == semiring_.Zero()) return ConstM(agg, monoid.Neutral());
    if (sn.value == semiring_.One()) return m_expr;
    if (mn.kind == ExprKind::kConstM) {
      return ConstM(agg, monoid.Tensor(semiring_, sn.value, mn.value));
    }
  }
  // (s1 (x) (s2 (x) m)) = (s1 * s2) (x) m.
  if (mn.kind == ExprKind::kTensor) {
    return Tensor(MulS(s_expr, mn.children[0]), mn.children[1]);
  }
  ExprNode n;
  n.kind = ExprKind::kTensor;
  n.sort = ExprSort::kMonoid;
  n.agg = agg;
  n.children = {s_expr, m_expr};
  return Intern(std::move(n));
}

ExprId ExprPool::AddM(AggKind agg, std::vector<ExprId> terms) {
  Monoid monoid(agg);
  std::vector<ExprId> flat;
  flat.reserve(terms.size());
  for (ExprId t : terms) {
    const ExprNode& tn = node(t);
    PVC_CHECK_MSG(tn.sort == ExprSort::kMonoid,
                  "AddM requires monoid-sorted terms");
    PVC_CHECK_MSG(tn.agg == agg, "AddM requires terms of the same monoid, got "
                                     << AggKindName(tn.agg) << " vs "
                                     << AggKindName(agg));
    if (tn.kind == ExprKind::kAddM) {
      flat.insert(flat.end(), tn.children.begin(), tn.children.end());
    } else {
      flat.push_back(t);
    }
  }
  int64_t const_sum = monoid.Neutral();
  std::vector<ExprId> rest;
  rest.reserve(flat.size());
  for (ExprId t : flat) {
    const ExprNode& tn = node(t);
    if (tn.kind == ExprKind::kConstM) {
      const_sum = monoid.Plus(const_sum, tn.value);
    } else {
      rest.push_back(t);
    }
  }
  std::sort(rest.begin(), rest.end());
  if (agg == AggKind::kMin || agg == AggKind::kMax) {
    // Idempotence of min/max: alpha +_M alpha = alpha.
    rest.erase(std::unique(rest.begin(), rest.end()), rest.end());
  }
  if (const_sum != monoid.Neutral()) {
    rest.push_back(ConstM(agg, const_sum));
    std::sort(rest.begin(), rest.end());
  }
  if (rest.empty()) return ConstM(agg, monoid.Neutral());
  if (rest.size() == 1) return rest.front();
  ExprNode n;
  n.kind = ExprKind::kAddM;
  n.sort = ExprSort::kMonoid;
  n.agg = agg;
  n.children = std::move(rest);
  return Intern(std::move(n));
}

ExprId ExprPool::Cmp(CmpOp op, ExprId lhs, ExprId rhs) {
  const ExprNode& ln = node(lhs);
  const ExprNode& rn = node(rhs);
  PVC_CHECK_MSG(ln.sort == rn.sort,
                "Cmp requires operands of the same sort (both semiring or "
                "both monoid)");
  if ((ln.kind == ExprKind::kConstS && rn.kind == ExprKind::kConstS) ||
      (ln.kind == ExprKind::kConstM && rn.kind == ExprKind::kConstM)) {
    return ConstS(EvalCmp(op, ln.value, rn.value) ? semiring_.One()
                                                  : semiring_.Zero());
  }
  ExprNode n;
  n.kind = ExprKind::kCmp;
  n.sort = ExprSort::kSemiring;
  n.cmp = op;
  n.children = {lhs, rhs};
  return Intern(std::move(n));
}

ExprId ExprPool::Substitute(ExprId e, VarId x, int64_t s) {
  const ExprNode& en = node(e);
  if (!std::binary_search(en.vars.begin(), en.vars.end(), x)) return e;
  // Local memo: within one call, (x, s) are fixed, so keying on the node id
  // suffices. The pool grows during rewriting, so we capture ids up front.
  std::unordered_map<ExprId, ExprId> memo;
  // Recursive lambda via explicit stack-free recursion helper.
  auto rec = [&](auto&& self, ExprId id) -> ExprId {
    const ExprNode n = node(id);  // Copy: pool may reallocate on Intern.
    if (!std::binary_search(n.vars.begin(), n.vars.end(), x)) return id;
    auto it = memo.find(id);
    if (it != memo.end()) return it->second;
    ExprId result = kInvalidExpr;
    switch (n.kind) {
      case ExprKind::kVar:
        result = ConstS(s);
        break;
      case ExprKind::kConstS:
      case ExprKind::kConstM:
        PVC_FAIL("constants contain no variables");
      case ExprKind::kAddS:
      case ExprKind::kMulS:
      case ExprKind::kAddM: {
        std::vector<ExprId> children;
        children.reserve(n.children.size());
        for (ExprId c : n.children) children.push_back(self(self, c));
        if (n.kind == ExprKind::kAddS) {
          result = AddS(std::move(children));
        } else if (n.kind == ExprKind::kMulS) {
          result = MulS(std::move(children));
        } else {
          result = AddM(n.agg, std::move(children));
        }
        break;
      }
      case ExprKind::kTensor:
        result = Tensor(self(self, n.children[0]), self(self, n.children[1]));
        break;
      case ExprKind::kCmp:
        result = Cmp(n.cmp, self(self, n.children[0]), self(self, n.children[1]));
        break;
    }
    memo.emplace(id, result);
    return result;
  };
  return rec(rec, e);
}

ExprId ExprPool::CloneInto(ExprPool* dst, ExprId e) const {
  PVC_CHECK(dst != nullptr);
  PVC_CHECK_MSG(dst->semiring_.kind() == semiring_.kind(),
                "CloneInto requires pools over the same semiring");
  if (dst == this) return e;
  std::unordered_map<ExprId, ExprId> memo;  // Source id -> destination id.
  auto rec = [&](auto&& self, ExprId id) -> ExprId {
    auto it = memo.find(id);
    if (it != memo.end()) return it->second;
    const ExprNode& n = node(id);  // Only `dst` grows; `this` is stable.
    ExprId result = kInvalidExpr;
    switch (n.kind) {
      case ExprKind::kVar:
        result = dst->Var(n.var());
        break;
      case ExprKind::kConstS:
        result = dst->ConstS(n.value);
        break;
      case ExprKind::kConstM:
        result = dst->ConstM(n.agg, n.value);
        break;
      case ExprKind::kAddS:
      case ExprKind::kMulS:
      case ExprKind::kAddM: {
        std::vector<ExprId> children;
        children.reserve(n.children.size());
        for (ExprId c : n.children) children.push_back(self(self, c));
        if (n.kind == ExprKind::kAddS) {
          result = dst->AddS(std::move(children));
        } else if (n.kind == ExprKind::kMulS) {
          result = dst->MulS(std::move(children));
        } else {
          result = dst->AddM(n.agg, std::move(children));
        }
        break;
      }
      case ExprKind::kTensor:
        result =
            dst->Tensor(self(self, n.children[0]), self(self, n.children[1]));
        break;
      case ExprKind::kCmp:
        result =
            dst->Cmp(n.cmp, self(self, n.children[0]), self(self, n.children[1]));
        break;
    }
    memo.emplace(id, result);
    return result;
  };
  return rec(rec, e);
}

void ExprPool::CountVarOccurrences(
    ExprId e, std::unordered_map<VarId, double>* counts) const {
  // Topological pass with path counting: a node reached over k distinct
  // paths contributes k occurrences per variable leaf, matching occurrence
  // counts in the expanded expression tree.
  std::vector<ExprId> order;  // Postorder: children precede parents.
  std::unordered_map<ExprId, bool> visited;
  auto dfs = [&](auto&& self, ExprId id) -> void {
    bool& flag = visited[id];
    if (flag) return;
    flag = true;
    for (ExprId c : node(id).children) self(self, c);
    order.push_back(id);
  };
  dfs(dfs, e);
  // Process in reverse (parents first) so parents distribute their path
  // counts to children.
  std::unordered_map<ExprId, double> paths;
  paths[e] = 1.0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    ExprId id = *it;
    double p = paths[id];
    const ExprNode& n = node(id);
    if (n.kind == ExprKind::kVar) {
      (*counts)[n.var()] += p;
    }
    for (ExprId c : n.children) paths[c] += p;
  }
}

size_t ExprPool::ReachableSize(ExprId e) const {
  std::unordered_map<ExprId, bool> visited;
  std::vector<ExprId> stack = {e};
  size_t count = 0;
  while (!stack.empty()) {
    ExprId id = stack.back();
    stack.pop_back();
    if (visited[id]) continue;
    visited[id] = true;
    ++count;
    for (ExprId c : node(id).children) stack.push_back(c);
  }
  return count;
}

}  // namespace pvcdb
