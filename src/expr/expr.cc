#include "src/expr/expr.h"

#include <algorithm>
#include <utility>

#include "src/util/check.h"
#include "src/util/hash.h"
#include "src/util/metrics.h"

namespace pvcdb {

namespace {

/// Free slot marker of the open-addressing intern table.
constexpr uint32_t kEmptySlot = 0xFFFFFFFFu;

// Distinct salts per node kind keep hashes of different kinds apart.
uint64_t KindSalt(ExprKind kind) {
  return 0x517cc1b727220a95ULL * (static_cast<uint64_t>(kind) + 1);
}

}  // namespace

ExprPool::ExprPool(SemiringKind kind) : semiring_(kind) {}

const ExprNode& ExprPool::node(ExprId id) const {
  PVC_CHECK_MSG(id < nodes_.size(), "invalid expression id " << id);
  return nodes_[id];
}

bool ExprPool::IsConst(ExprId id) const {
  ExprKind k = node(id).kind;
  return k == ExprKind::kConstS || k == ExprKind::kConstM;
}

uint64_t ExprPool::NodeHash(ExprKind kind, ExprSort sort, AggKind agg,
                            CmpOp cmp, int64_t value, const ExprId* children,
                            uint32_t num_children) {
  uint64_t h = KindSalt(kind);
  h = HashCombine(h, static_cast<uint64_t>(sort));
  h = HashCombine(h, static_cast<uint64_t>(agg));
  h = HashCombine(h, static_cast<uint64_t>(cmp));
  h = HashCombine(h, std::hash<int64_t>()(value));
  for (uint32_t i = 0; i < num_children; ++i) h = HashCombine(h, children[i]);
  return h;
}

void ExprPool::Rehash(size_t new_size) {
  table_.assign(new_size, kEmptySlot);
  size_t mask = new_size - 1;
  for (ExprId id = 0; id < nodes_.size(); ++id) {
    size_t i = nodes_[id].hash & mask;
    while (table_[i] != kEmptySlot) i = (i + 1) & mask;
    table_[i] = id;
  }
}

void ExprPool::Reserve(size_t additional_nodes) {
  size_t target = nodes_.size() + additional_nodes;
  nodes_.reserve(target);
  // Keep the load factor below 0.7 without intermediate rehashes.
  size_t slots = table_.empty() ? 512 : table_.size();
  while (slots * 7 < (target + 1) * 10) slots *= 2;
  if (slots > table_.size()) Rehash(slots);
}

void ExprPool::StoreVars(ExprNode* node, const VarId* vars, uint32_t n) {
  node->num_vars = n;
  if (n <= ExprNode::kInlineVars) {
    std::copy(vars, vars + n, node->inline_vars_);
  } else {
    node->vars_ptr_ = var_arena_.Append(vars, n);
  }
}

void ExprPool::FillVars(ExprNode* node, const ExprId* children, uint32_t n) {
  switch (node->kind) {
    case ExprKind::kVar: {
      VarId v = node->var();
      StoreVars(node, &v, 1);
      return;
    }
    case ExprKind::kConstS:
    case ExprKind::kConstM:
      node->num_vars = 0;
      return;
    default:
      break;
  }
  // Union of the children's (sorted distinct) variable sets. A node with a
  // single non-ground child shares that child's arena run outright.
  const ExprNode* single = nullptr;
  uint32_t non_ground = 0;
  for (uint32_t i = 0; i < n; ++i) {
    const ExprNode& c = nodes_[children[i]];
    if (!c.IsGround()) {
      ++non_ground;
      single = &c;
    }
  }
  if (non_ground == 0) {
    node->num_vars = 0;
    return;
  }
  if (non_ground == 1) {
    if (single->num_vars > ExprNode::kInlineVars) {
      node->num_vars = single->num_vars;
      node->vars_ptr_ = single->vars_ptr_;
    } else {
      StoreVars(node, single->vars().data(), single->num_vars);
    }
    return;
  }
  scratch_vars_.clear();
  if (non_ground == 2 && n == 2) {
    Span<VarId> a = nodes_[children[0]].vars();
    Span<VarId> b = nodes_[children[1]].vars();
    std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                   std::back_inserter(scratch_vars_));
  } else {
    for (uint32_t i = 0; i < n; ++i) {
      Span<VarId> cv = nodes_[children[i]].vars();
      scratch_vars_.insert(scratch_vars_.end(), cv.begin(), cv.end());
    }
    std::sort(scratch_vars_.begin(), scratch_vars_.end());
    scratch_vars_.erase(
        std::unique(scratch_vars_.begin(), scratch_vars_.end()),
        scratch_vars_.end());
  }
  StoreVars(node, scratch_vars_.data(),
            static_cast<uint32_t>(scratch_vars_.size()));
}

ExprId ExprPool::Intern(ExprKind kind, ExprSort sort, AggKind agg, CmpOp cmp,
                        int64_t value, const ExprId* children,
                        uint32_t num_children) {
  uint64_t h = NodeHash(kind, sort, agg, cmp, value, children, num_children);
  if (table_.empty()) Rehash(512);
  size_t mask = table_.size() - 1;
  size_t i = h & mask;
  for (;; i = (i + 1) & mask) {
    uint32_t slot = table_[i];
    if (slot == kEmptySlot) break;
    const ExprNode& cand = nodes_[slot];
    if (cand.hash == h && cand.kind == kind && cand.sort == sort &&
        cand.agg == agg && cand.cmp == cmp && cand.value == value &&
        cand.num_children == num_children &&
        std::equal(children, children + num_children,
                   cand.children().begin())) {
      return slot;
    }
  }
  ExprNode node;
  node.kind = kind;
  node.sort = sort;
  node.agg = agg;
  node.cmp = cmp;
  node.value = value;
  node.hash = h;
  node.num_children = num_children;
  if (num_children <= ExprNode::kInlineChildren) {
    std::copy(children, children + num_children, node.inline_children_);
  } else {
    node.children_ptr_ = child_arena_.Append(children, num_children);
  }
  FillVars(&node, children, num_children);
  ExprId id = static_cast<ExprId>(nodes_.size());
  PVC_CHECK_MSG(id != kInvalidExpr, "expression pool exhausted");
  nodes_.push_back(node);
  table_[i] = id;
  ++table_used_;
  PVCDB_COUNTER_ADD("engine.exprs_interned", 1);
  if ((table_used_ + 1) * 10 >= table_.size() * 7) Rehash(table_.size() * 2);
  return id;
}

ExprId ExprPool::Var(VarId x) {
  return Intern(ExprKind::kVar, ExprSort::kSemiring, AggKind::kSum,
                CmpOp::kEq, static_cast<int64_t>(x), nullptr, 0);
}

ExprId ExprPool::ConstS(int64_t s) {
  return Intern(ExprKind::kConstS, ExprSort::kSemiring, AggKind::kSum,
                CmpOp::kEq, semiring_.Canonical(s), nullptr, 0);
}

ExprId ExprPool::AddSRange(const ExprId* terms, size_t n) {
  // Flatten nested sums.
  std::vector<ExprId>& flat = scratch_flat_;
  flat.clear();
  for (size_t t = 0; t < n; ++t) {
    const ExprNode& tn = node(terms[t]);
    PVC_CHECK_MSG(tn.sort == ExprSort::kSemiring,
                  "AddS requires semiring-sorted terms");
    if (tn.kind == ExprKind::kAddS) {
      Span<ExprId> c = tn.children();
      flat.insert(flat.end(), c.begin(), c.end());
    } else {
      flat.push_back(terms[t]);
    }
  }
  // Fold constants; keep non-constants.
  int64_t const_sum = semiring_.Zero();
  std::vector<ExprId>& rest = scratch_rest_;
  rest.clear();
  for (ExprId t : flat) {
    const ExprNode& tn = nodes_[t];
    if (tn.kind == ExprKind::kConstS) {
      const_sum = semiring_.Plus(const_sum, tn.value);
    } else {
      rest.push_back(t);
    }
  }
  // Boolean absorption: 1 + Phi = 1.
  if (semiring_.kind() == SemiringKind::kBool && const_sum != 0) {
    return ConstS(1);
  }
  std::sort(rest.begin(), rest.end());
  if (semiring_.kind() == SemiringKind::kBool) {
    // Idempotence of OR in PosBool(X): x + x = x.
    rest.erase(std::unique(rest.begin(), rest.end()), rest.end());
  }
  if (const_sum != semiring_.Zero()) {
    rest.push_back(ConstS(const_sum));
    std::sort(rest.begin(), rest.end());
  }
  if (rest.empty()) return ConstS(semiring_.Zero());
  if (rest.size() == 1) return rest.front();
  return Intern(ExprKind::kAddS, ExprSort::kSemiring, AggKind::kSum,
                CmpOp::kEq, 0, rest.data(), static_cast<uint32_t>(rest.size()));
}

ExprId ExprPool::MulSRange(const ExprId* factors, size_t n) {
  std::vector<ExprId>& flat = scratch_flat_;
  flat.clear();
  for (size_t f = 0; f < n; ++f) {
    const ExprNode& fn = node(factors[f]);
    PVC_CHECK_MSG(fn.sort == ExprSort::kSemiring,
                  "MulS requires semiring-sorted factors");
    if (fn.kind == ExprKind::kMulS) {
      Span<ExprId> c = fn.children();
      flat.insert(flat.end(), c.begin(), c.end());
    } else {
      flat.push_back(factors[f]);
    }
  }
  int64_t const_prod = semiring_.One();
  std::vector<ExprId>& rest = scratch_rest_;
  rest.clear();
  for (ExprId f : flat) {
    const ExprNode& fn = nodes_[f];
    if (fn.kind == ExprKind::kConstS) {
      const_prod = semiring_.Times(const_prod, fn.value);
    } else {
      rest.push_back(f);
    }
  }
  if (const_prod == semiring_.Zero()) return ConstS(semiring_.Zero());
  std::sort(rest.begin(), rest.end());
  if (semiring_.kind() == SemiringKind::kBool) {
    // Idempotence of AND in PosBool(X): x * x = x.
    rest.erase(std::unique(rest.begin(), rest.end()), rest.end());
  }
  if (const_prod != semiring_.One()) {
    rest.push_back(ConstS(const_prod));
    std::sort(rest.begin(), rest.end());
  }
  if (rest.empty()) return ConstS(semiring_.One());
  if (rest.size() == 1) return rest.front();
  return Intern(ExprKind::kMulS, ExprSort::kSemiring, AggKind::kSum,
                CmpOp::kEq, 0, rest.data(), static_cast<uint32_t>(rest.size()));
}

ExprId ExprPool::ConstM(AggKind agg, int64_t m) {
  return Intern(ExprKind::kConstM, ExprSort::kMonoid, agg, CmpOp::kEq, m,
                nullptr, 0);
}

ExprId ExprPool::Tensor(ExprId s_expr, ExprId m_expr) {
  // Copies: interning below may reallocate the node vector.
  const ExprNode sn = node(s_expr);
  const ExprNode mn = node(m_expr);
  PVC_CHECK_MSG(sn.sort == ExprSort::kSemiring,
                "Tensor left operand must be semiring-sorted");
  PVC_CHECK_MSG(mn.sort == ExprSort::kMonoid,
                "Tensor right operand must be monoid-sorted");
  AggKind agg = mn.agg;
  Monoid monoid(agg);
  // s (x) 0_M = 0_M.
  if (mn.kind == ExprKind::kConstM && mn.value == monoid.Neutral()) {
    return m_expr;
  }
  if (sn.kind == ExprKind::kConstS) {
    // 0_S (x) m = 0_M; 1_S (x) m = m.
    if (sn.value == semiring_.Zero()) return ConstM(agg, monoid.Neutral());
    if (sn.value == semiring_.One()) return m_expr;
    if (mn.kind == ExprKind::kConstM) {
      return ConstM(agg, monoid.Tensor(semiring_, sn.value, mn.value));
    }
  }
  // (s1 (x) (s2 (x) m)) = (s1 * s2) (x) m.
  if (mn.kind == ExprKind::kTensor) {
    return Tensor(MulS(s_expr, mn.child(0)), mn.child(1));
  }
  ExprId children[2] = {s_expr, m_expr};
  return Intern(ExprKind::kTensor, ExprSort::kMonoid, agg, CmpOp::kEq, 0,
                children, 2);
}

ExprId ExprPool::AddMRange(AggKind agg, const ExprId* terms, size_t n) {
  Monoid monoid(agg);
  std::vector<ExprId>& flat = scratch_flat_;
  flat.clear();
  for (size_t t = 0; t < n; ++t) {
    const ExprNode& tn = node(terms[t]);
    PVC_CHECK_MSG(tn.sort == ExprSort::kMonoid,
                  "AddM requires monoid-sorted terms");
    PVC_CHECK_MSG(tn.agg == agg, "AddM requires terms of the same monoid, got "
                                     << AggKindName(tn.agg) << " vs "
                                     << AggKindName(agg));
    if (tn.kind == ExprKind::kAddM) {
      Span<ExprId> c = tn.children();
      flat.insert(flat.end(), c.begin(), c.end());
    } else {
      flat.push_back(terms[t]);
    }
  }
  int64_t const_sum = monoid.Neutral();
  std::vector<ExprId>& rest = scratch_rest_;
  rest.clear();
  for (ExprId t : flat) {
    const ExprNode& tn = nodes_[t];
    if (tn.kind == ExprKind::kConstM) {
      const_sum = monoid.Plus(const_sum, tn.value);
    } else {
      rest.push_back(t);
    }
  }
  std::sort(rest.begin(), rest.end());
  if (agg == AggKind::kMin || agg == AggKind::kMax) {
    // Idempotence of min/max: alpha +_M alpha = alpha.
    rest.erase(std::unique(rest.begin(), rest.end()), rest.end());
  }
  if (const_sum != monoid.Neutral()) {
    rest.push_back(ConstM(agg, const_sum));
    std::sort(rest.begin(), rest.end());
  }
  if (rest.empty()) return ConstM(agg, monoid.Neutral());
  if (rest.size() == 1) return rest.front();
  return Intern(ExprKind::kAddM, ExprSort::kMonoid, agg, CmpOp::kEq, 0,
                rest.data(), static_cast<uint32_t>(rest.size()));
}

ExprId ExprPool::Cmp(CmpOp op, ExprId lhs, ExprId rhs) {
  const ExprNode& ln = node(lhs);
  const ExprNode& rn = node(rhs);
  PVC_CHECK_MSG(ln.sort == rn.sort,
                "Cmp requires operands of the same sort (both semiring or "
                "both monoid)");
  if ((ln.kind == ExprKind::kConstS && rn.kind == ExprKind::kConstS) ||
      (ln.kind == ExprKind::kConstM && rn.kind == ExprKind::kConstM)) {
    return ConstS(EvalCmp(op, ln.value, rn.value) ? semiring_.One()
                                                  : semiring_.Zero());
  }
  ExprId children[2] = {lhs, rhs};
  return Intern(ExprKind::kCmp, ExprSort::kSemiring, AggKind::kSum, op, 0,
                children, 2);
}

ExprId ExprPool::Substitute(ExprId e, VarId x, int64_t s) {
  {
    Span<VarId> vs = VarsOf(e);
    if (!std::binary_search(vs.begin(), vs.end(), x)) return e;
  }
  // Epoch-stamped dense memo: within one call, (x, s) are fixed, so keying
  // on the node id suffices. Rewriting only visits nodes reachable from
  // `e`, all of which predate the call, so the memo never needs to cover
  // nodes created by the rewrite itself. Bumping the epoch resets the memo
  // in O(1); the explicit stack removes any recursion depth limit.
  if (subst_stamp_.size() < nodes_.size()) {
    subst_stamp_.resize(nodes_.size(), 0);
    subst_memo_.resize(nodes_.size());
  }
  if (++subst_epoch_ == 0) {
    std::fill(subst_stamp_.begin(), subst_stamp_.end(), 0u);
    subst_epoch_ = 1;
  }
  const uint32_t epoch = subst_epoch_;
  auto settled = [&](ExprId id) { return subst_stamp_[id] == epoch; };
  auto settle = [&](ExprId id, ExprId result) {
    subst_stamp_[id] = epoch;
    subst_memo_[id] = result;
  };
  // Nodes not mentioning x rewrite to themselves without a visit.
  auto trivially_self = [&](ExprId id) {
    Span<VarId> vs = nodes_[id].vars();
    return !std::binary_search(vs.begin(), vs.end(), x);
  };

  std::vector<ExprId>& stack = subst_stack_;
  stack.clear();
  stack.push_back(e);
  std::vector<ExprId> args;  // Rewritten children of the node being built.
  while (!stack.empty()) {
    ExprId id = stack.back();
    if (settled(id)) {
      stack.pop_back();
      continue;
    }
    const ExprNode n = nodes_[id];  // Copy: the pool grows below.
    if (n.kind == ExprKind::kVar) {
      // n.var() == x here (nodes without x never enter the stack).
      settle(id, ConstS(s));
      stack.pop_back();
      continue;
    }
    // Children first (left to right, hence pushed in reverse), mirroring
    // the substitution order of the recursive formulation so the rewritten
    // pool grows in the identical sequence.
    bool ready = true;
    Span<ExprId> kids = n.children();
    for (size_t i = kids.size(); i-- > 0;) {
      ExprId c = kids[i];
      if (settled(c)) continue;
      if (trivially_self(c)) {
        settle(c, c);
        continue;
      }
      stack.push_back(c);
      ready = false;
    }
    if (!ready) continue;
    ExprId result = kInvalidExpr;
    switch (n.kind) {
      case ExprKind::kVar:
      case ExprKind::kConstS:
      case ExprKind::kConstM:
        PVC_FAIL("constants contain no variables");
      case ExprKind::kAddS:
      case ExprKind::kMulS:
      case ExprKind::kAddM: {
        args.clear();
        for (ExprId c : kids) args.push_back(subst_memo_[c]);
        if (n.kind == ExprKind::kAddS) {
          result = AddSRange(args.data(), args.size());
        } else if (n.kind == ExprKind::kMulS) {
          result = MulSRange(args.data(), args.size());
        } else {
          result = AddMRange(n.agg, args.data(), args.size());
        }
        break;
      }
      case ExprKind::kTensor:
        result = Tensor(subst_memo_[kids[0]], subst_memo_[kids[1]]);
        break;
      case ExprKind::kCmp:
        result = Cmp(n.cmp, subst_memo_[kids[0]], subst_memo_[kids[1]]);
        break;
    }
    settle(id, result);
    stack.pop_back();
  }
  return subst_memo_[e];
}

ExprId ExprPool::CloneInto(ExprPool* dst, ExprId e) const {
  PVC_CHECK(dst != nullptr);
  PVC_CHECK_MSG(dst->semiring_.kind() == semiring_.kind(),
                "CloneInto requires pools over the same semiring");
  if (dst == this) return e;
  // Children are always interned before their parents, so every node
  // reachable from `e` has id <= e: a dense memo of e + 1 slots covers the
  // whole clone, and the destination can pre-reserve that many nodes up
  // front instead of reallocating while the clone streams in.
  dst->Reserve(static_cast<size_t>(e) + 1);
  std::vector<ExprId> memo(static_cast<size_t>(e) + 1, kInvalidExpr);
  std::vector<ExprId> stack = {e};
  std::vector<ExprId> args;
  while (!stack.empty()) {
    ExprId id = stack.back();
    if (memo[id] != kInvalidExpr) {
      stack.pop_back();
      continue;
    }
    const ExprNode& n = nodes_[id];  // Only `dst` grows; `this` is stable.
    bool ready = true;
    Span<ExprId> kids = n.children();
    for (size_t i = kids.size(); i-- > 0;) {
      ExprId c = kids[i];
      if (memo[c] == kInvalidExpr) {
        stack.push_back(c);
        ready = false;
      }
    }
    if (!ready) continue;
    ExprId result = kInvalidExpr;
    switch (n.kind) {
      case ExprKind::kVar:
        result = dst->Var(n.var());
        break;
      case ExprKind::kConstS:
        result = dst->ConstS(n.value);
        break;
      case ExprKind::kConstM:
        result = dst->ConstM(n.agg, n.value);
        break;
      case ExprKind::kAddS:
      case ExprKind::kMulS:
      case ExprKind::kAddM: {
        args.clear();
        for (ExprId c : kids) args.push_back(memo[c]);
        if (n.kind == ExprKind::kAddS) {
          result = dst->AddSRange(args.data(), args.size());
        } else if (n.kind == ExprKind::kMulS) {
          result = dst->MulSRange(args.data(), args.size());
        } else {
          result = dst->AddMRange(n.agg, args.data(), args.size());
        }
        break;
      }
      case ExprKind::kTensor:
        result = dst->Tensor(memo[kids[0]], memo[kids[1]]);
        break;
      case ExprKind::kCmp:
        result = dst->Cmp(n.cmp, memo[kids[0]], memo[kids[1]]);
        break;
    }
    memo[id] = result;
    stack.pop_back();
  }
  return memo[e];
}

void ExprPool::CountVarOccurrences(
    ExprId e, std::unordered_map<VarId, double>* counts) const {
  // Topological pass with path counting: a node reached over k distinct
  // paths contributes k occurrences per variable leaf, matching occurrence
  // counts in the expanded expression tree. Path counts are integer-valued
  // (sums of 1s), so the accumulation order cannot perturb them.
  std::vector<uint8_t> state(static_cast<size_t>(e) + 1, 0);
  std::vector<ExprId> order;  // Postorder: children precede parents.
  std::vector<ExprId> stack = {e};
  while (!stack.empty()) {
    ExprId id = stack.back();
    if (state[id] == 2) {
      stack.pop_back();
      continue;
    }
    if (state[id] == 0) {
      state[id] = 1;
      for (ExprId c : nodes_[id].children()) {
        if (state[c] == 0) stack.push_back(c);
      }
    } else {
      state[id] = 2;
      order.push_back(id);
      stack.pop_back();
    }
  }
  // Process in reverse (parents first) so parents distribute their path
  // counts to children.
  std::vector<double> paths(static_cast<size_t>(e) + 1, 0.0);
  paths[e] = 1.0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    ExprId id = *it;
    double p = paths[id];
    const ExprNode& n = nodes_[id];
    if (n.kind == ExprKind::kVar) {
      (*counts)[n.var()] += p;
    }
    for (ExprId c : n.children()) paths[c] += p;
  }
}

size_t ExprPool::ReachableSize(ExprId e) const {
  std::vector<uint8_t> visited(static_cast<size_t>(e) + 1, 0);
  std::vector<ExprId> stack = {e};
  size_t count = 0;
  while (!stack.empty()) {
    ExprId id = stack.back();
    stack.pop_back();
    if (visited[id]) continue;
    visited[id] = 1;
    ++count;
    for (ExprId c : nodes_[id].children()) stack.push_back(c);
  }
  return count;
}

}  // namespace pvcdb
