#include "src/table/cell.h"

#include "src/expr/print.h"
#include "src/util/check.h"
#include "src/util/hash.h"

namespace pvcdb {

Cell Cell::Agg(ExprId e) {
  Cell c;
  c.value_ = AggRef{e};
  return c;
}

CellType Cell::type() const {
  switch (value_.index()) {
    case 0:
      return CellType::kNull;
    case 1:
      return CellType::kInt;
    case 2:
      return CellType::kDouble;
    case 3:
      return CellType::kString;
    case 4:
      return CellType::kAggExpr;
  }
  PVC_FAIL("corrupt cell variant");
}

int64_t Cell::AsInt() const {
  PVC_CHECK_MSG(type() == CellType::kInt, "cell is not an integer");
  return std::get<int64_t>(value_);
}

double Cell::AsDouble() const {
  PVC_CHECK_MSG(type() == CellType::kDouble, "cell is not a double");
  return std::get<double>(value_);
}

const std::string& Cell::AsString() const {
  PVC_CHECK_MSG(type() == CellType::kString, "cell is not a string");
  return std::get<std::string>(value_);
}

ExprId Cell::AsAgg() const {
  PVC_CHECK_MSG(type() == CellType::kAggExpr,
                "cell is not an aggregation expression");
  return std::get<AggRef>(value_).expr;
}

size_t Cell::Hash() const {
  size_t seed = HashCombine(0, value_.index());
  switch (type()) {
    case CellType::kNull:
      return seed;
    case CellType::kInt:
      return HashCombine(seed, std::hash<int64_t>()(std::get<int64_t>(value_)));
    case CellType::kDouble:
      return HashCombine(seed, std::hash<double>()(std::get<double>(value_)));
    case CellType::kString:
      return HashCombine(seed,
                         std::hash<std::string>()(std::get<std::string>(value_)));
    case CellType::kAggExpr:
      return HashCombine(seed, std::get<AggRef>(value_).expr);
  }
  PVC_FAIL("corrupt cell variant");
}

std::string Cell::ToString(const ExprPool* pool) const {
  switch (type()) {
    case CellType::kNull:
      return "NULL";
    case CellType::kInt:
      return std::to_string(std::get<int64_t>(value_));
    case CellType::kDouble:
      return std::to_string(std::get<double>(value_));
    case CellType::kString:
      return std::get<std::string>(value_);
    case CellType::kAggExpr:
      if (pool != nullptr) {
        return ExprToString(*pool, std::get<AggRef>(value_).expr);
      }
      return "<agg#" + std::to_string(std::get<AggRef>(value_).expr) + ">";
  }
  PVC_FAIL("corrupt cell variant");
}

}  // namespace pvcdb
