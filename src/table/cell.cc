#include "src/table/cell.h"

#include <cstring>

#include "src/expr/print.h"
#include "src/util/check.h"
#include "src/util/hash.h"

namespace pvcdb {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t FnvByte(uint64_t h, uint8_t byte) { return (h ^ byte) * kFnvPrime; }

// Feeds `v` little-endian, byte by byte, independent of host endianness.
uint64_t FnvUint64(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) h = FnvByte(h, static_cast<uint8_t>(v >> (8 * i)));
  return h;
}

}  // namespace

Cell Cell::Agg(ExprId e) {
  Cell c;
  c.value_ = AggRef{e};
  return c;
}

CellType Cell::type() const {
  switch (value_.index()) {
    case 0:
      return CellType::kNull;
    case 1:
      return CellType::kInt;
    case 2:
      return CellType::kDouble;
    case 3:
      return CellType::kString;
    case 4:
      return CellType::kAggExpr;
  }
  PVC_FAIL("corrupt cell variant");
}

int64_t Cell::AsInt() const {
  PVC_CHECK_MSG(type() == CellType::kInt, "cell is not an integer");
  return std::get<int64_t>(value_);
}

double Cell::AsDouble() const {
  PVC_CHECK_MSG(type() == CellType::kDouble, "cell is not a double");
  return std::get<double>(value_);
}

const std::string& Cell::AsString() const {
  PVC_CHECK_MSG(type() == CellType::kString, "cell is not a string");
  return std::get<std::string>(value_);
}

ExprId Cell::AsAgg() const {
  PVC_CHECK_MSG(type() == CellType::kAggExpr,
                "cell is not an aggregation expression");
  return std::get<AggRef>(value_).expr;
}

size_t Cell::Hash() const {
  size_t seed = HashCombine(0, value_.index());
  switch (type()) {
    case CellType::kNull:
      return seed;
    case CellType::kInt:
      return HashCombine(seed, std::hash<int64_t>()(std::get<int64_t>(value_)));
    case CellType::kDouble:
      return HashCombine(seed, std::hash<double>()(std::get<double>(value_)));
    case CellType::kString:
      return HashCombine(seed,
                         std::hash<std::string>()(std::get<std::string>(value_)));
    case CellType::kAggExpr:
      return HashCombine(seed, std::get<AggRef>(value_).expr);
  }
  PVC_FAIL("corrupt cell variant");
}

uint64_t Cell::StableHash() const {
  uint64_t h = FnvByte(kFnvOffset, static_cast<uint8_t>(type()));
  switch (type()) {
    case CellType::kNull:
      return h;
    case CellType::kInt:
      return FnvUint64(h, static_cast<uint64_t>(std::get<int64_t>(value_)));
    case CellType::kDouble: {
      uint64_t bits = 0;
      double v = std::get<double>(value_);
      std::memcpy(&bits, &v, sizeof(bits));
      return FnvUint64(h, bits);
    }
    case CellType::kString: {
      for (char c : std::get<std::string>(value_)) {
        h = FnvByte(h, static_cast<uint8_t>(c));
      }
      return h;
    }
    case CellType::kAggExpr:
      // Aggregation cells reference a pool-local id; there is no canonical
      // byte representation, and shard keys are data columns anyway.
      PVC_FAIL("aggregation expressions have no stable hash");
  }
  PVC_FAIL("corrupt cell variant");
}

std::string Cell::ToString(const ExprPool* pool) const {
  switch (type()) {
    case CellType::kNull:
      return "NULL";
    case CellType::kInt:
      return std::to_string(std::get<int64_t>(value_));
    case CellType::kDouble:
      return std::to_string(std::get<double>(value_));
    case CellType::kString:
      return std::get<std::string>(value_);
    case CellType::kAggExpr:
      if (pool != nullptr) {
        return ExprToString(*pool, std::get<AggRef>(value_).expr);
      }
      return "<agg#" + std::to_string(std::get<AggRef>(value_).expr) + ">";
  }
  PVC_FAIL("corrupt cell variant");
}

}  // namespace pvcdb
