#include "src/table/schema.h"

#include <sstream>
#include <unordered_set>

#include "src/util/check.h"

namespace pvcdb {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  std::unordered_set<std::string> seen;
  for (const Column& c : columns_) {
    PVC_CHECK_MSG(seen.insert(c.name).second,
                  "duplicate column name '" << c.name << "'");
  }
}

const Column& Schema::column(size_t i) const {
  PVC_CHECK_MSG(i < columns_.size(), "column index " << i << " out of range");
  return columns_[i];
}

std::optional<size_t> Schema::Find(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return std::nullopt;
}

size_t Schema::IndexOf(const std::string& name) const {
  std::optional<size_t> idx = Find(name);
  PVC_CHECK_MSG(idx.has_value(), "no column named '" << name << "'");
  return *idx;
}

std::string Schema::ToString() const {
  std::ostringstream out;
  out << "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out << ", ";
    out << columns_[i].name;
  }
  out << ")";
  return out.str();
}

}  // namespace pvcdb
