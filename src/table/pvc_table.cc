#include "src/table/pvc_table.h"

#include <algorithm>
#include <sstream>

#include "src/expr/print.h"
#include "src/util/check.h"

namespace pvcdb {

const Row& PvcTable::row(size_t i) const {
  PVC_CHECK_MSG(i < rows_.size(), "row index " << i << " out of range");
  return rows_[i];
}

void PvcTable::AddRow(Row row) {
  PVC_CHECK_MSG(row.cells.size() == schema_.NumColumns(),
                "row arity " << row.cells.size() << " does not match schema "
                             << schema_.NumColumns());
  PVC_CHECK_MSG(row.annotation != kInvalidExpr, "row needs an annotation");
  rows_.push_back(std::move(row));
}

void PvcTable::AddRow(std::vector<Cell> cells, ExprId annotation) {
  Row r;
  r.cells = std::move(cells);
  r.annotation = annotation;
  AddRow(std::move(r));
}

void PvcTable::DeleteRow(size_t index) {
  PVC_CHECK_MSG(index < rows_.size(),
                "row index " << index << " out of range");
  rows_.erase(rows_.begin() + index);
}

void PvcTable::InsertRowAt(size_t index, Row row) {
  PVC_CHECK_MSG(index <= rows_.size(),
                "insert position " << index << " out of range");
  PVC_CHECK_MSG(row.cells.size() == schema_.NumColumns(),
                "row arity " << row.cells.size() << " does not match schema "
                             << schema_.NumColumns());
  PVC_CHECK_MSG(row.annotation != kInvalidExpr, "row needs an annotation");
  rows_.insert(rows_.begin() + index, std::move(row));
}

void PvcTable::SetAnnotation(size_t index, ExprId annotation) {
  PVC_CHECK_MSG(index < rows_.size(),
                "row index " << index << " out of range");
  PVC_CHECK_MSG(annotation != kInvalidExpr, "row needs an annotation");
  rows_[index].annotation = annotation;
}

const Cell& PvcTable::CellAt(size_t row_index, const std::string& column) const {
  return row(row_index).cells[schema_.IndexOf(column)];
}

PvcTable PvcTable::MaterializeWorld(const ExprPool& pool,
                                    const Valuation& nu) const {
  // Aggregation columns become plain integers in a world.
  std::vector<Column> columns = schema_.columns();
  for (Column& c : columns) {
    if (c.type == CellType::kAggExpr) c.type = CellType::kInt;
  }
  PvcTable world{Schema(std::move(columns))};
  for (const Row& r : rows_) {
    int64_t multiplicity = EvalExpr(pool, r.annotation, nu);
    if (multiplicity == 0) continue;
    Row out;
    out.cells.reserve(r.cells.size());
    for (const Cell& c : r.cells) {
      if (c.type() == CellType::kAggExpr) {
        out.cells.emplace_back(EvalExpr(pool, c.AsAgg(), nu));
      } else {
        out.cells.push_back(c);
      }
    }
    // The evaluated annotation is the tuple's multiplicity in this world.
    // (Representable as a constant expression, but a world is deterministic,
    // so we keep the numeric value in the annotation slot via a ConstS-like
    // convention: the caller reads it from ToString or via multiplicities.)
    out.annotation = r.annotation;
    world.rows_.push_back(std::move(out));
  }
  return world;
}

std::vector<size_t> AssignShards(
    const PvcTable& table, size_t key_column,
    const std::function<size_t(const Cell&)>& shard_of) {
  PVC_CHECK_MSG(key_column < table.schema().NumColumns(),
                "shard key column " << key_column << " out of range");
  std::vector<size_t> assignment;
  assignment.reserve(table.NumRows());
  for (const Row& r : table.rows()) {
    size_t shard = shard_of(r.cells[key_column]);
    assignment.push_back(shard);
  }
  return assignment;
}

std::string PvcTable::ToString(const ExprPool* pool) const {
  std::ostringstream out;
  // Header.
  std::vector<size_t> widths;
  std::vector<std::vector<std::string>> grid;
  std::vector<std::string> header;
  for (const Column& c : schema_.columns()) header.push_back(c.name);
  header.push_back("Phi");
  grid.push_back(header);
  for (const Row& r : rows_) {
    std::vector<std::string> line;
    for (const Cell& c : r.cells) line.push_back(c.ToString(pool));
    line.push_back(pool != nullptr ? ExprToString(*pool, r.annotation)
                                   : "<expr#" + std::to_string(r.annotation) +
                                         ">");
    grid.push_back(std::move(line));
  }
  widths.resize(grid[0].size(), 0);
  for (const auto& line : grid) {
    for (size_t i = 0; i < line.size(); ++i) {
      widths[i] = std::max(widths[i], line[i].size());
    }
  }
  for (size_t li = 0; li < grid.size(); ++li) {
    for (size_t i = 0; i < grid[li].size(); ++i) {
      out << grid[li][i];
      out << std::string(widths[i] - grid[li][i].size() + 2, ' ');
    }
    out << "\n";
    if (li == 0) {
      size_t total = 0;
      for (size_t w : widths) total += w + 2;
      out << std::string(total, '-') << "\n";
    }
  }
  return out.str();
}

}  // namespace pvcdb
