// Cells of pvc-tables: constants or semimodule expressions (Definition 6).
//
// Tuple values in a pvc-table are either ordinary constants (integers,
// fixed-point decimals, strings) or semimodule expressions representing
// aggregated values; the latter are references into the database's
// ExprPool.

#ifndef PVCDB_TABLE_CELL_H_
#define PVCDB_TABLE_CELL_H_

#include <cstdint>
#include <string>
#include <variant>

#include "src/expr/expr.h"

namespace pvcdb {

/// Runtime type of a cell / column.
enum class CellType : uint8_t {
  kNull,
  kInt,
  kDouble,
  kString,
  kAggExpr,  ///< A semimodule expression (aggregation column).
};

/// One tuple value.
class Cell {
 public:
  Cell() : value_(std::monostate{}) {}
  explicit Cell(int64_t v) : value_(v) {}
  explicit Cell(double v) : value_(v) {}
  explicit Cell(std::string v) : value_(std::move(v)) {}
  explicit Cell(const char* v) : value_(std::string(v)) {}

  /// A semimodule-expression cell (aggregation value).
  static Cell Agg(ExprId e);

  CellType type() const;

  bool is_null() const { return type() == CellType::kNull; }

  int64_t AsInt() const;
  double AsDouble() const;
  const std::string& AsString() const;
  ExprId AsAgg() const;

  /// Structural equality (used for grouping; exact double equality).
  bool operator==(const Cell& other) const { return value_ == other.value_; }
  bool operator!=(const Cell& other) const { return !(*this == other); }

  /// Hash for grouping hash tables.
  size_t Hash() const;

  /// Platform-independent FNV-1a hash of the cell's canonical byte
  /// representation (type tag + little-endian value bytes). Unlike Hash(),
  /// which delegates to std::hash, this value is stable across processes
  /// and platforms -- shard routing (src/engine/shard.h) depends on that,
  /// so partitions computed on different machines agree.
  uint64_t StableHash() const;

  /// Rendering; aggregation cells print their expression when `pool` is
  /// provided, otherwise a placeholder.
  std::string ToString(const ExprPool* pool = nullptr) const;

 private:
  struct AggRef {
    ExprId expr;
    bool operator==(const AggRef& other) const { return expr == other.expr; }
  };

  std::variant<std::monostate, int64_t, double, std::string, AggRef> value_;
};

}  // namespace pvcdb

#endif  // PVCDB_TABLE_CELL_H_
