// pvc-tables: probabilistic value-conditioned tables (Definition 6).
//
// A pvc-table is a relation with an annotation column Phi holding semiring
// expressions over the random variables X, and whose tuple values can be
// constants or semimodule expressions. Its semantics is the set of possible
// worlds {nu(T) | nu in Omega}; MaterializeWorld() below produces one world.

#ifndef PVCDB_TABLE_PVC_TABLE_H_
#define PVCDB_TABLE_PVC_TABLE_H_

#include <functional>
#include <string>
#include <vector>

#include "src/expr/eval.h"
#include "src/expr/expr.h"
#include "src/table/cell.h"
#include "src/table/schema.h"

namespace pvcdb {

/// One tuple plus its annotation Phi (a semiring expression id).
struct Row {
  std::vector<Cell> cells;
  ExprId annotation = kInvalidExpr;
};

/// A pvc-table: schema + annotated rows. Expression ids refer to the
/// owning database's ExprPool.
class PvcTable {
 public:
  PvcTable() = default;
  explicit PvcTable(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }

  size_t NumRows() const { return rows_.size(); }
  const Row& row(size_t i) const;
  const std::vector<Row>& rows() const { return rows_; }

  /// Appends a row; its arity must match the schema.
  void AddRow(Row row);

  /// Convenience: appends a row of cells with annotation `annotation`.
  void AddRow(std::vector<Cell> cells, ExprId annotation);

  // -- Row mutation (incremental view maintenance, src/engine/view.h) ------

  /// Removes row `index`; later rows shift down by one. O(rows).
  void DeleteRow(size_t index);

  /// Inserts `row` so that it becomes row `index` (existing rows from
  /// `index` on shift up). `index` may equal NumRows() (append). O(rows).
  void InsertRowAt(size_t index, Row row);

  /// Replaces the annotation of row `index` (projection-style views merge
  /// annotations in place when a delta touches an existing group).
  void SetAnnotation(size_t index, ExprId annotation);

  /// The cell of row `row_index` in the column named `column`.
  const Cell& CellAt(size_t row_index, const std::string& column) const;

  /// One possible world: keeps the rows whose annotation evaluates to a
  /// non-zero semiring value under `nu`, with semimodule cells evaluated to
  /// constants. The annotation column of the result holds the evaluated
  /// multiplicities (1 for the Boolean semiring).
  PvcTable MaterializeWorld(const ExprPool& pool, const Valuation& nu) const;

  /// Tabular rendering including the annotation column.
  std::string ToString(const ExprPool* pool = nullptr) const;

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

// -- Partition helpers (sharded catalogs, src/engine/shard.h) --------------

/// The shard of each row: `shard_of` applied to the row's cell in column
/// `key_column`. Row order is preserved, so partitions formed from the
/// result are order-preserving subsequences of the table.
std::vector<size_t> AssignShards(
    const PvcTable& table, size_t key_column,
    const std::function<size_t(const Cell&)>& shard_of);

}  // namespace pvcdb

#endif  // PVCDB_TABLE_PVC_TABLE_H_
