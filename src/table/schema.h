// Schemas of pvc-tables.

#ifndef PVCDB_TABLE_SCHEMA_H_
#define PVCDB_TABLE_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "src/table/cell.h"

namespace pvcdb {

/// One column: a name plus its runtime type. Columns of type kAggExpr are
/// the "aggregation attributes" restricted by Definition 5.
struct Column {
  std::string name;
  CellType type = CellType::kInt;

  bool operator==(const Column& other) const {
    return name == other.name && type == other.type;
  }
};

/// Ordered list of columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  size_t NumColumns() const { return columns_.size(); }
  const Column& column(size_t i) const;
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column named `name`, if present. Column names must be
  /// unique within a schema (checked on construction).
  std::optional<size_t> Find(const std::string& name) const;

  /// Index of `name`; checks that the column exists.
  size_t IndexOf(const std::string& name) const;

  bool operator==(const Schema& other) const {
    return columns_ == other.columns_;
  }

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace pvcdb

#endif  // PVCDB_TABLE_SCHEMA_H_
