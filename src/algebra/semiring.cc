#include "src/algebra/semiring.h"

#include "src/util/check.h"

namespace pvcdb {

int64_t Semiring::Plus(int64_t a, int64_t b) const {
  switch (kind_) {
    case SemiringKind::kBool:
      return (a != 0 || b != 0) ? 1 : 0;
    case SemiringKind::kNatural:
      return a + b;
  }
  PVC_FAIL("unknown semiring kind");
}

int64_t Semiring::Times(int64_t a, int64_t b) const {
  switch (kind_) {
    case SemiringKind::kBool:
      return (a != 0 && b != 0) ? 1 : 0;
    case SemiringKind::kNatural:
      return a * b;
  }
  PVC_FAIL("unknown semiring kind");
}

bool Semiring::Contains(int64_t v) const {
  switch (kind_) {
    case SemiringKind::kBool:
      return v == 0 || v == 1;
    case SemiringKind::kNatural:
      return v >= 0;
  }
  PVC_FAIL("unknown semiring kind");
}

int64_t Semiring::Canonical(int64_t v) const {
  switch (kind_) {
    case SemiringKind::kBool:
      return v != 0 ? 1 : 0;
    case SemiringKind::kNatural:
      return v;
  }
  PVC_FAIL("unknown semiring kind");
}

std::string Semiring::Name() const {
  switch (kind_) {
    case SemiringKind::kBool:
      return "B";
    case SemiringKind::kNatural:
      return "N";
  }
  PVC_FAIL("unknown semiring kind");
}

}  // namespace pvcdb
