#include "src/algebra/monoid.h"

#include <algorithm>

#include "src/util/check.h"

namespace pvcdb {

int64_t Monoid::Neutral() const {
  switch (kind_) {
    case AggKind::kSum:
    case AggKind::kCount:
      return 0;
    case AggKind::kMin:
      return kPosInf;
    case AggKind::kMax:
      return kNegInf;
    case AggKind::kProd:
      return 1;
  }
  PVC_FAIL("unknown monoid kind");
}

int64_t Monoid::Plus(int64_t m1, int64_t m2) const {
  switch (kind_) {
    case AggKind::kSum:
    case AggKind::kCount:
      return m1 + m2;
    case AggKind::kMin:
      return std::min(m1, m2);
    case AggKind::kMax:
      return std::max(m1, m2);
    case AggKind::kProd:
      return m1 * m2;
  }
  PVC_FAIL("unknown monoid kind");
}

int64_t Monoid::Tensor(const Semiring& semiring, int64_t s, int64_t m) const {
  // s (x) m = m +_M ... +_M m, s times (Example 6). A value s outside
  // {0, 1} can only arise under the natural-number semiring.
  PVC_CHECK_MSG(semiring.Contains(s) || semiring.kind() == SemiringKind::kBool,
                "tensor with value outside semiring carrier: " << s);
  int64_t times = semiring.kind() == SemiringKind::kBool ? (s != 0 ? 1 : 0) : s;
  PVC_CHECK_MSG(times >= 0, "tensor requires a non-negative multiplier");
  switch (kind_) {
    case AggKind::kSum:
    case AggKind::kCount:
      return times * m;
    case AggKind::kMin:
      return times > 0 ? m : kPosInf;
    case AggKind::kMax:
      return times > 0 ? m : kNegInf;
    case AggKind::kProd: {
      int64_t result = 1;
      for (int64_t i = 0; i < times; ++i) result *= m;
      return result;
    }
  }
  PVC_FAIL("unknown monoid kind");
}

std::string Monoid::Name() const { return AggKindName(kind_); }

bool EvalCmp(CmpOp op, int64_t a, int64_t b) {
  switch (op) {
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return a != b;
    case CmpOp::kLe:
      return a <= b;
    case CmpOp::kGe:
      return a >= b;
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kGt:
      return a > b;
  }
  PVC_FAIL("unknown comparison operator");
}

std::string CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGe:
      return ">=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kGt:
      return ">";
  }
  PVC_FAIL("unknown comparison operator");
}

std::string AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kSum:
      return "SUM";
    case AggKind::kCount:
      return "COUNT";
    case AggKind::kMin:
      return "MIN";
    case AggKind::kMax:
      return "MAX";
    case AggKind::kProd:
      return "PROD";
  }
  PVC_FAIL("unknown aggregation kind");
}

std::string MonoidValueToString(int64_t v) {
  if (v == kPosInf) return "inf";
  if (v == kNegInf) return "-inf";
  return std::to_string(v);
}

}  // namespace pvcdb
