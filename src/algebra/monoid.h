// Aggregation monoids (Definition 2) and the semimodule tensor action
// (Definition 4).
//
// The paper models aggregations as commutative monoids:
//   SUM   = (Z, +, 0)            COUNT = SUM over constant value 1
//   MIN   = (Z +- inf, min, +inf)  MAX = (Z +- inf, max, -inf)
//   PROD  = (Z, *, 1)
// Monoid values are int64_t; +-infinity are encoded by sentinels that the
// monoid operations treat as absorbing/neutral as appropriate.
//
// The tensor action s (x) m of a semiring element on a monoid value is
// "m added to itself s times" in the monoid (Example 6): for s in N,
//   s (x)_SUM m  = s * m          s (x)_PROD m = m^s
//   s (x)_MIN m  = m if s > 0 else +inf
//   s (x)_MAX m  = m if s > 0 else -inf
// For the Boolean semiring this degenerates to: 1 (x) m = m, 0 (x) m = 0_M.

#ifndef PVCDB_ALGEBRA_MONOID_H_
#define PVCDB_ALGEBRA_MONOID_H_

#include <cstdint>
#include <limits>
#include <string>

#include "src/algebra/semiring.h"

namespace pvcdb {

/// Aggregation kinds supported by the query language Q (Section 2.3).
enum class AggKind : uint8_t {
  kSum,    ///< SUM: (Z, +, 0).
  kCount,  ///< COUNT: SUM over the constant 1 per tuple.
  kMin,    ///< MIN: (Z U {+inf}, min, +inf).
  kMax,    ///< MAX: (Z U {-inf}, max, -inf).
  kProd,   ///< PROD: (Z, *, 1).
};

/// Sentinel encodings of +infinity / -infinity used by MIN / MAX.
/// Half of the int64 range so that comparisons never overflow.
inline constexpr int64_t kPosInf = std::numeric_limits<int64_t>::max() / 2;
inline constexpr int64_t kNegInf = std::numeric_limits<int64_t>::min() / 2;

/// Operations of one concrete aggregation monoid.
class Monoid {
 public:
  explicit Monoid(AggKind kind) : kind_(kind) {}

  AggKind kind() const { return kind_; }

  /// The neutral element 0_M (e.g. 0 for SUM, +inf for MIN).
  int64_t Neutral() const;

  /// Monoid addition m1 +_M m2 (e.g. min(m1, m2) for MIN).
  int64_t Plus(int64_t m1, int64_t m2) const;

  /// The tensor action s (x) m for a semiring value s (Definition 4).
  int64_t Tensor(const Semiring& semiring, int64_t s, int64_t m) const;

  std::string Name() const;

 private:
  AggKind kind_;
};

/// Comparison operators theta of conditional expressions [alpha theta beta].
enum class CmpOp : uint8_t { kEq, kNe, kLe, kGe, kLt, kGt };

/// Evaluates `a theta b` on (semiring or monoid) values; the +-inf
/// sentinels order correctly under plain integer comparison.
bool EvalCmp(CmpOp op, int64_t a, int64_t b);

/// Rendering of a comparison operator ("=", "!=", "<=", ...).
std::string CmpOpName(CmpOp op);

/// Rendering of an aggregation kind ("SUM", "MIN", ...).
std::string AggKindName(AggKind kind);

/// Renders a monoid value, using "inf"/"-inf" for the sentinels.
std::string MonoidValueToString(int64_t v);

}  // namespace pvcdb

#endif  // PVCDB_ALGEBRA_MONOID_H_
