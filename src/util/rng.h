// Deterministic pseudo-random number generator used by the workload
// generators and the Monte-Carlo baseline. All randomized components of
// pvcdb are seeded explicitly so experiments are reproducible.

#ifndef PVCDB_UTIL_RNG_H_
#define PVCDB_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace pvcdb {

/// Thin wrapper over std::mt19937_64 with convenience sampling methods.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in the closed interval [lo, hi].
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in the half-open interval [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// Samples `k` distinct values from {0, 1, ..., n-1} (k <= n).
  std::vector<int> SampleDistinct(int n, int k);

  /// Underlying engine, for use with standard distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace pvcdb

#endif  // PVCDB_UTIL_RNG_H_
