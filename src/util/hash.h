// Hash helpers used by the expression pool's hash-consing and by the query
// evaluator's grouping hash tables.

#ifndef PVCDB_UTIL_HASH_H_
#define PVCDB_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace pvcdb {

/// Mixes `value` into `seed` (boost::hash_combine-style, 64-bit constants).
inline size_t HashCombine(size_t seed, size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Hashes a range of hashable elements into one value.
template <typename Iterator>
size_t HashRange(Iterator begin, Iterator end, size_t seed = 0) {
  using Value = typename std::iterator_traits<Iterator>::value_type;
  std::hash<Value> hasher;
  for (Iterator it = begin; it != end; ++it) {
    seed = HashCombine(seed, hasher(*it));
  }
  return seed;
}

}  // namespace pvcdb

#endif  // PVCDB_UTIL_HASH_H_
