#include "src/util/rng.h"

#include <algorithm>
#include <numeric>

#include "src/util/check.h"

namespace pvcdb {

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  PVC_CHECK(lo <= hi);
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::UniformDouble(double lo, double hi) {
  PVC_CHECK(lo <= hi);
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

std::vector<int> Rng::SampleDistinct(int n, int k) {
  PVC_CHECK(k >= 0 && k <= n);
  // Partial Fisher-Yates: only the first k slots are materialised.
  std::vector<int> pool(n);
  std::iota(pool.begin(), pool.end(), 0);
  for (int i = 0; i < k; ++i) {
    int j = static_cast<int>(UniformInt(i, n - 1));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace pvcdb
