// Wall-clock timer used by the benchmark harnesses to reproduce the paper's
// per-phase timing breakdowns (Experiment F measures Q0, [[.]], and P(.)
// separately).

#ifndef PVCDB_UTIL_TIMER_H_
#define PVCDB_UTIL_TIMER_H_

#include <chrono>

namespace pvcdb {

/// Simple monotonic stopwatch; starts on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pvcdb

#endif  // PVCDB_UTIL_TIMER_H_
