#include "src/util/io.h"

#include <cerrno>
#include <cstring>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>

namespace pvcdb {
namespace {

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  bool Append(const void* data, size_t n) override {
    if (fd_ < 0) return false;
    const char* p = static_cast<const char*>(data);
    while (n > 0) {
      ssize_t written = ::write(fd_, p, n);
      if (written < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      p += written;
      n -= static_cast<size_t>(written);
    }
    return true;
  }

  bool Sync() override { return fd_ >= 0 && ::fsync(fd_) == 0; }

  bool Close() override {
    if (fd_ < 0) return false;
    bool ok = ::fsync(fd_) == 0;
    ok = ::close(fd_) == 0 && ok;
    fd_ = -1;
    return ok;
  }

 private:
  int fd_;
  std::string path_;
};

class PosixFileSystem : public FileSystem {
 public:
  std::unique_ptr<WritableFile> OpenForAppend(const std::string& path,
                                              std::string* error) override {
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0) {
      if (error != nullptr) *error = ErrnoMessage("cannot open", path);
      return nullptr;
    }
    return std::make_unique<PosixWritableFile>(fd, path);
  }

  bool ReadFile(const std::string& path, std::string* out,
                std::string* error) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      if (error != nullptr) *error = ErrnoMessage("cannot read", path);
      return false;
    }
    out->clear();
    char buffer[1 << 16];
    while (true) {
      ssize_t n = ::read(fd, buffer, sizeof(buffer));
      if (n < 0) {
        if (errno == EINTR) continue;
        if (error != nullptr) *error = ErrnoMessage("read failed", path);
        ::close(fd);
        return false;
      }
      if (n == 0) break;
      out->append(buffer, static_cast<size_t>(n));
    }
    ::close(fd);
    return true;
  }

  bool Truncate(const std::string& path, uint64_t size,
                std::string* error) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      if (error != nullptr) *error = ErrnoMessage("cannot truncate", path);
      return false;
    }
    return true;
  }

  bool Rename(const std::string& from, const std::string& to,
              std::string* error) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      if (error != nullptr) *error = ErrnoMessage("cannot rename", from);
      return false;
    }
    return true;
  }

  bool Remove(const std::string& path, std::string* error) override {
    if (::unlink(path.c_str()) != 0) {
      if (error != nullptr) *error = ErrnoMessage("cannot remove", path);
      return false;
    }
    return true;
  }

  bool FileExists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  bool CreateDir(const std::string& path, std::string* error) override {
    // Create each component of the path in turn (mkdir -p).
    for (size_t i = 1; i <= path.size(); ++i) {
      if (i != path.size() && path[i] != '/') continue;
      std::string prefix = path.substr(0, i);
      if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
        if (error != nullptr) *error = ErrnoMessage("cannot mkdir", prefix);
        return false;
      }
    }
    return true;
  }

  std::vector<std::string> ListDir(const std::string& path) override {
    std::vector<std::string> names;
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) return names;
    while (struct dirent* entry = ::readdir(dir)) {
      std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      names.push_back(std::move(name));
    }
    ::closedir(dir);
    std::sort(names.begin(), names.end());
    return names;
  }
};

}  // namespace

FileSystem* DefaultFileSystem() {
  static PosixFileSystem* fs = new PosixFileSystem();
  return fs;
}

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  if (dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

}  // namespace pvcdb
