// A minimal read-only span plus a stable-address arena, shared by the flat
// expression pool (src/expr/expr.h) and the flat d-tree (src/dtree/dtree.h).
//
// StableArena hands out contiguous runs whose addresses never move: storage
// is block-allocated and a run never spans blocks, so a Span into the arena
// stays valid for the arena's lifetime even while it keeps growing. This is
// what lets pool nodes carry raw child/var pointers instead of one
// heap-allocated std::vector each.

#ifndef PVCDB_UTIL_SPAN_H_
#define PVCDB_UTIL_SPAN_H_

#include <algorithm>
#include <cstddef>
#include <memory>
#include <vector>

namespace pvcdb {

/// Read-only view of `size` contiguous items starting at `data`.
template <typename T>
class Span {
 public:
  constexpr Span() = default;
  constexpr Span(const T* data, size_t size) : data_(data), size_(size) {}
  Span(const std::vector<T>& v) : data_(v.data()), size_(v.size()) {}

  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T& operator[](size_t i) const { return data_[i]; }
  const T& front() const { return data_[0]; }
  const T& back() const { return data_[size_ - 1]; }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
};

template <typename T>
bool operator==(Span<T> a, Span<T> b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

template <typename T>
bool operator==(Span<T> a, const std::vector<T>& b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

template <typename T>
bool operator==(const std::vector<T>& a, Span<T> b) {
  return b == a;
}

template <typename T>
bool operator!=(Span<T> a, const std::vector<T>& b) {
  return !(a == b);
}

template <typename T>
bool operator!=(const std::vector<T>& a, Span<T> b) {
  return !(b == a);
}

namespace detail {

/// Block-allocating arena of trivially copyable items with stable
/// addresses. Append() copies a run into the current block (or a fresh,
/// geometrically larger one) and returns its stable base pointer.
template <typename T>
class StableArena {
 public:
  const T* Append(const T* data, size_t n) {
    if (n == 0) return nullptr;
    if (n > remaining_) Grow(n);
    T* out = cursor_;
    std::copy(data, data + n, out);
    cursor_ += n;
    remaining_ -= n;
    total_ += n;
    return out;
  }

  /// Total items stored (for memory accounting; slack at block ends is not
  /// counted).
  size_t size() const { return total_; }

 private:
  void Grow(size_t need) {
    size_t block = std::max<size_t>(next_block_, need);
    blocks_.push_back(std::make_unique<T[]>(block));
    cursor_ = blocks_.back().get();
    remaining_ = block;
    next_block_ = std::min<size_t>(block * 2, size_t{1} << 20);
  }

  std::vector<std::unique_ptr<T[]>> blocks_;
  T* cursor_ = nullptr;
  size_t remaining_ = 0;
  size_t total_ = 0;
  size_t next_block_ = 256;
};

}  // namespace detail

}  // namespace pvcdb

#endif  // PVCDB_UTIL_SPAN_H_
