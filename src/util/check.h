// Invariant-checking macros for pvcdb.
//
// PVC_CHECK(cond) aborts the current operation by throwing pvcdb::CheckError
// when `cond` is false. These macros guard programmer errors (violated
// preconditions and internal invariants), not data-dependent failures;
// fallible user-facing operations return std::optional or a status boolean
// instead.

#ifndef PVCDB_UTIL_CHECK_H_
#define PVCDB_UTIL_CHECK_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace pvcdb {

/// Error thrown when a PVC_CHECK invariant fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& message)
      : std::logic_error(message) {}
};

namespace internal {

/// Throws CheckError with a formatted source location. Out-of-line so the
/// macro expansion stays small.
[[noreturn]] void CheckFail(const char* condition, const char* file, int line,
                            const std::string& message);

/// Stream-style message builder used by the PVC_CHECK macros.
class CheckMessageBuilder {
 public:
  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace pvcdb

/// Checks that `condition` holds; throws pvcdb::CheckError otherwise.
/// Additional context can be streamed: PVC_CHECK(x > 0) << "x=" << x;
/// is not supported -- use PVC_CHECK_MSG for messages.
#define PVC_CHECK(condition)                                             \
  do {                                                                   \
    if (!(condition)) {                                                  \
      ::pvcdb::internal::CheckFail(#condition, __FILE__, __LINE__, ""); \
    }                                                                    \
  } while (false)

/// PVC_CHECK with an explanatory message built with stream syntax, e.g.
/// PVC_CHECK_MSG(i < n, "index " << i << " out of range " << n).
#define PVC_CHECK_MSG(condition, message_expr)                       \
  do {                                                               \
    if (!(condition)) {                                              \
      ::pvcdb::internal::CheckMessageBuilder pvc_check_builder;      \
      pvc_check_builder << message_expr;                             \
      ::pvcdb::internal::CheckFail(#condition, __FILE__, __LINE__,   \
                                   pvc_check_builder.str());         \
    }                                                                \
  } while (false)

/// Unconditional failure with a message; use for unreachable code paths.
#define PVC_FAIL(message_expr)                                     \
  do {                                                             \
    ::pvcdb::internal::CheckMessageBuilder pvc_check_builder;      \
    pvc_check_builder << message_expr;                             \
    ::pvcdb::internal::CheckFail("PVC_FAIL", __FILE__, __LINE__,   \
                                 pvc_check_builder.str());         \
  } while (false)

#endif  // PVCDB_UTIL_CHECK_H_
