// CRC32C (Castagnoli) checksums for the durability layer.
//
// The WAL and snapshot formats (src/engine/wal.h, src/engine/snapshot.h)
// checksum every record so recovery can detect torn or corrupted tails.
// This is the portable table-driven implementation (no SSE4.2 dependency);
// the polynomial is the Castagnoli one (0x1EDC6F41, reflected 0x82F63B78)
// used by iSCSI, LevelDB and ext4, so the values are comparable with
// standard tooling.

#ifndef PVCDB_UTIL_CRC32C_H_
#define PVCDB_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace pvcdb {

/// Extends `crc` (a running CRC32C, 0 for a fresh one) with `n` bytes.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// CRC32C of one contiguous buffer.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

inline uint32_t Crc32c(const std::string& s) {
  return Crc32cExtend(0, s.data(), s.size());
}

}  // namespace pvcdb

#endif  // PVCDB_UTIL_CRC32C_H_
