// Deterministic parallel-evaluation primitives: a fixed-size ThreadPool
// and a ParallelFor loop built on it.
//
// The design goal is *bit-identical results* between serial and parallel
// evaluation, which rules out atomics on doubles and any reduction whose
// order depends on thread scheduling. ParallelFor therefore only
// distributes iterations whose side effects are confined to per-iteration
// state (typically `out[i] = f(i)`); all reductions stay with the caller,
// in the serial order. The pool is deliberately work-stealing-free: tasks
// are coarse (whole ParallelFor worker loops), so a single FIFO queue
// keeps the implementation small and easy to reason about under TSan.
//
// Thread-count convention (the engine-wide `EvalOptions::num_threads`
// knob): 0 and 1 mean serial, n > 1 means up to n threads including the
// caller, negative means "all hardware threads".

#ifndef PVCDB_UTIL_PARALLEL_H_
#define PVCDB_UTIL_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pvcdb {

/// A fixed-size pool of worker threads consuming one FIFO task queue.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);

  /// Waits for the queue to drain, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution by some worker. Tasks must not throw
  /// (ParallelFor catches exceptions before they reach the pool).
  void Submit(std::function<void()> task);

  size_t size() const { return threads_.size(); }

  /// The lazily constructed process-wide pool used by ParallelFor. Sized to
  /// the hardware concurrency minus the calling thread, with a floor of 3
  /// workers so that num_threads in {2, 4, 8} genuinely multithreads (and
  /// TSan sees real interleavings) even on small CI machines.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

/// Hardware concurrency with a floor of 1.
size_t DefaultThreadCount();

/// Maps the engine-facing `num_threads` knob to an actual thread count:
/// 0 and 1 mean serial (returns 1), negative means all hardware threads.
size_t ResolveThreadCount(int num_threads);

/// True while the current thread is executing ParallelFor iterations
/// (worker or participating caller). Nested ParallelFor calls detect this
/// and run serially instead of re-entering the shared pool.
bool InParallelWorker();

/// Runs fn(i) for every i in [0, n) on up to `num_threads` threads, the
/// caller included. Iterations are claimed dynamically from a shared atomic
/// counter, so which thread runs which iteration is unspecified; results
/// are nevertheless deterministic whenever fn(i) only writes state owned by
/// iteration i (the only usage pattern in this codebase). Falls back to a
/// plain serial loop when `num_threads` resolves to 1, n < 2, or the caller
/// is already inside a ParallelFor. The first exception thrown by any
/// iteration is rethrown on the caller once all claimed iterations finish;
/// remaining iterations are abandoned.
void ParallelFor(int num_threads, size_t n,
                 const std::function<void(size_t)>& fn);

/// Per-worker task deques for dynamic DAG scheduling (the intra-d-tree
/// parallel probability pass): each worker pushes and pops ready tasks at
/// the *back* of its own deque (LIFO keeps the working set hot), and a
/// worker whose deque ran dry steals from the *front* of a victim's deque
/// (FIFO steals grab the oldest -- typically largest -- subproblems).
/// Deques are individually mutex-guarded: operations are a few nanoseconds
/// against task granularities of microseconds, and the lock gives the
/// scheduler a sequentially consistent happens-before chain that is easy
/// to reason about under TSan.
class WorkStealingDeques {
 public:
  explicit WorkStealingDeques(size_t num_workers);

  size_t num_workers() const { return deques_.size(); }

  /// Pushes `task` onto `worker`'s deque.
  void Push(size_t worker, uint32_t task);

  /// Pops the most recent task of `worker`'s own deque; false when empty.
  bool Pop(size_t worker, uint32_t* task);

  /// Steals the oldest task from some other worker's deque, scanning
  /// victims round-robin from `thief + 1`; false when all deques are empty.
  bool Steal(size_t thief, uint32_t* task);

 private:
  struct Deque {
    std::mutex mutex;
    std::deque<uint32_t> items;
  };

  std::vector<std::unique_ptr<Deque>> deques_;
};

}  // namespace pvcdb

#endif  // PVCDB_UTIL_PARALLEL_H_
