#include "src/util/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

namespace pvcdb {

namespace {

thread_local bool tls_in_parallel_worker = false;

// Restores the thread-local worker flag on scope exit (the caller of a
// ParallelFor participates in the loop and must unmark itself afterwards).
class ScopedWorkerMark {
 public:
  ScopedWorkerMark() : previous_(tls_in_parallel_worker) {
    tls_in_parallel_worker = true;
  }
  ~ScopedWorkerMark() { tls_in_parallel_worker = previous_; }

 private:
  bool previous_;
};

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain the queue even when stopping: ParallelFor joins its own
      // iterations, so any queued task still has a caller waiting on it.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(std::max<size_t>(DefaultThreadCount() - 1, 3));
  return pool;
}

size_t DefaultThreadCount() {
  return std::max<size_t>(std::thread::hardware_concurrency(), 1);
}

size_t ResolveThreadCount(int num_threads) {
  if (num_threads < 0) return DefaultThreadCount();
  return std::max(static_cast<size_t>(num_threads), size_t{1});
}

bool InParallelWorker() { return tls_in_parallel_worker; }

void ParallelFor(int num_threads, size_t n,
                 const std::function<void(size_t)>& fn) {
  size_t threads = std::min(ResolveThreadCount(num_threads), n);
  if (threads <= 1 || InParallelWorker()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Shared loop state: an atomic iteration counter plus completion
  // bookkeeping. Stack-allocated; the caller does not return before every
  // helper has finished its claimed iterations.
  struct LoopState {
    std::atomic<size_t> next{0};
    std::atomic<bool> cancelled{false};
    std::mutex mutex;
    std::condition_variable done;
    size_t active_helpers = 0;
    std::exception_ptr error;
  } state;

  auto worker = [&state, &fn, n] {
    ScopedWorkerMark mark;
    for (;;) {
      if (state.cancelled.load(std::memory_order_relaxed)) return;
      size_t i = state.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        state.cancelled.store(true, std::memory_order_relaxed);
        std::unique_lock<std::mutex> lock(state.mutex);
        if (!state.error) state.error = std::current_exception();
        return;
      }
    }
  };

  size_t helpers = threads - 1;
  {
    std::unique_lock<std::mutex> lock(state.mutex);
    state.active_helpers = helpers;
  }
  for (size_t h = 0; h < helpers; ++h) {
    ThreadPool::Shared().Submit([&state, &worker] {
      worker();
      std::unique_lock<std::mutex> lock(state.mutex);
      if (--state.active_helpers == 0) state.done.notify_one();
    });
  }
  worker();
  {
    std::unique_lock<std::mutex> lock(state.mutex);
    state.done.wait(lock, [&state] { return state.active_helpers == 0; });
    if (state.error) std::rethrow_exception(state.error);
  }
}

WorkStealingDeques::WorkStealingDeques(size_t num_workers) {
  deques_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    deques_.push_back(std::make_unique<Deque>());
  }
}

void WorkStealingDeques::Push(size_t worker, uint32_t task) {
  Deque& d = *deques_[worker];
  std::unique_lock<std::mutex> lock(d.mutex);
  d.items.push_back(task);
}

bool WorkStealingDeques::Pop(size_t worker, uint32_t* task) {
  Deque& d = *deques_[worker];
  std::unique_lock<std::mutex> lock(d.mutex);
  if (d.items.empty()) return false;
  *task = d.items.back();
  d.items.pop_back();
  return true;
}

bool WorkStealingDeques::Steal(size_t thief, uint32_t* task) {
  size_t n = deques_.size();
  for (size_t step = 1; step <= n; ++step) {
    Deque& d = *deques_[(thief + step) % n];
    std::unique_lock<std::mutex> lock(d.mutex);
    if (d.items.empty()) continue;
    *task = d.items.front();
    d.items.pop_front();
    return true;
  }
  return false;
}

}  // namespace pvcdb
