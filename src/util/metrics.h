// Process-wide metrics registry and per-command phase tracing.
//
// The observability layer has one hard invariant (docs/ARCHITECTURE.md):
// instrumentation never changes results or acks. Everything here is
// read-modify-write on relaxed atomics off to the side of the data path --
// no metric participates in any reply, and disabling the layer (runtime
// kill switch or the PVCDB_METRICS_OFF compile definition) changes nothing
// but the counters themselves.
//
// Three primitives, all owned by the process-global MetricsRegistry:
//
//   Counter    -- monotone u64, lock-free increment.
//   Gauge      -- signed level, lock-free set/add.
//   Histogram  -- fixed upper-bound buckets + count + sum, lock-free
//                 observe; defaults to latency-in-milliseconds buckets.
//
// Registration (name -> metric) takes a mutex once per call site; the hot
// path caches the returned pointer in a function-local static (see the
// PVCDB_COUNTER_* / PVCDB_SPAN macros), so steady-state cost is one
// relaxed atomic op guarded by one relaxed bool load. Registered metrics
// are never deallocated before process exit, so cached pointers stay valid
// across MetricsRegistry::Reset().
//
// Phase tracing: TraceSpan is an RAII scope that times one query phase
// (parse, step1, ivm, compile, step2, encode), feeds the phase's latency
// histogram, and -- when a CommandTraceScope is active on the same thread
// -- appends the timing to the current command's trace. Completed traces
// land in the TraceLog ring buffer; traces slower than the configured
// threshold additionally emit a structured one-line slow-query log entry
// on stderr.

#ifndef PVCDB_UTIL_METRICS_H_
#define PVCDB_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/timer.h"

namespace pvcdb {

// -- Kill switches ----------------------------------------------------------

/// Runtime toggle (also reachable by exporting PVCDB_METRICS_OFF=1 before
/// process start). The overhead benchmark flips this in the measured
/// server; forked workers inherit whatever the parent set.
void SetMetricsEnabled(bool enabled);

#if defined(PVCDB_METRICS_OFF)
/// Compiled out: every instrumentation macro below folds to nothing.
inline bool MetricsEnabled() { return false; }
#else
namespace metrics_internal {
std::atomic<bool>& EnabledFlag();
}  // namespace metrics_internal

inline bool MetricsEnabled() {
  return metrics_internal::EnabledFlag().load(std::memory_order_relaxed);
}
#endif

// -- Primitives -------------------------------------------------------------

class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class Histogram {
 public:
  /// `bounds` are strictly increasing inclusive upper bounds; one implicit
  /// overflow bucket catches everything above the last bound.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  struct Snapshot {
    std::vector<double> bounds;
    std::vector<uint64_t> counts;  ///< bounds.size() + 1 (overflow last).
    uint64_t count = 0;
    double sum = 0.0;
  };
  Snapshot Snap() const;
  void Reset();

  const std::vector<double>& bounds() const { return bounds_; }

  /// Default buckets for latency-in-milliseconds histograms: 0.05 ms to
  /// 1 s, roughly 1-2.5-5 per decade.
  static const std::vector<double>& LatencyBucketsMs();
  /// Buckets for small-count histograms (group-commit batch sizes):
  /// powers of two, 1 to 256.
  static const std::vector<double>& CountBuckets();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// -- Snapshots --------------------------------------------------------------

/// One metric's point-in-time value, decoupled from the live registry.
/// Also the unit the kStatsReply wire message carries (the coordinator
/// aggregates worker registries from these).
struct MetricSnapshot {
  enum class Kind : uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

  Kind kind = Kind::kCounter;
  std::string name;
  uint64_t counter_value = 0;                   ///< kCounter.
  int64_t gauge_value = 0;                      ///< kGauge.
  std::vector<double> bounds;                   ///< kHistogram.
  std::vector<uint64_t> bucket_counts;          ///< bounds.size() + 1.
  uint64_t observations = 0;                    ///< kHistogram.
  double sum = 0.0;                             ///< kHistogram.
};

/// Markdown-style text table (the TablePrinter idiom of bench/bench_util.h)
/// for the `stats` command. Histograms render count / mean / non-empty
/// buckets.
std::string RenderMetricsTable(const std::vector<MetricSnapshot>& entries);

/// JSON Lines, one record per metric, for `stats --json` and
/// --metrics-dump. Counters/gauges: {"metric":n,"type":t,"value":v};
/// histograms additionally carry count, sum, and per-bucket counts.
std::string RenderMetricsJson(const std::vector<MetricSnapshot>& entries);

// -- Registry ---------------------------------------------------------------

class MetricsRegistry {
 public:
  /// The process-wide registry. Worker processes have their own (separate
  /// address spaces); the coordinator merges them over kStatsRequest.
  static MetricsRegistry& Global();

  /// Find-or-create. The returned pointer is stable for the process
  /// lifetime (metrics are never deallocated); hot paths cache it.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// Default (latency-ms) buckets. A histogram that already exists keeps
  /// its original buckets regardless of later calls.
  Histogram* GetHistogram(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& bounds);

  /// Point-in-time snapshot of every registered metric, sorted by name.
  /// Safe against concurrent increments (relaxed reads: each metric is
  /// internally consistent, cross-metric skew is possible).
  std::vector<MetricSnapshot> Snapshot() const;

  /// Zeroes every registered metric (keeps registrations, so cached
  /// pointers stay valid). Used by tests and by freshly forked workers,
  /// whose registries inherit the parent's pre-fork values otherwise.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// -- Command tracing --------------------------------------------------------

struct PhaseTiming {
  const char* phase = nullptr;  ///< Static string (macro literal).
  double ms = 0.0;
};

struct CommandTrace {
  std::string command;
  double total_ms = 0.0;
  std::vector<PhaseTiming> phases;  ///< Completion order.
};

/// Process-wide ring of recent command traces plus the slow-query policy.
class TraceLog {
 public:
  static TraceLog& Global();

  /// Threshold in milliseconds; negative disables slow-query logging
  /// (the default). Settable at any time (pvcdb_server --slow-query-ms).
  void set_slow_query_ms(double ms) {
    slow_ms_.store(ms, std::memory_order_relaxed);
  }
  double slow_query_ms() const {
    return slow_ms_.load(std::memory_order_relaxed);
  }

  /// Ring-buffers the trace; when it ran past the slow-query threshold,
  /// bumps server.slow_queries and emits one structured line on stderr:
  ///   pvcdb slow-query total_ms=12.345 step1_ms=... cmd="select ..."
  void Record(CommandTrace trace);

  std::vector<CommandTrace> Recent() const;
  void Clear();

 private:
  static constexpr size_t kRingCapacity = 128;

  mutable std::mutex mu_;
  std::deque<CommandTrace> ring_;
  std::atomic<double> slow_ms_{-1.0};
};

/// RAII phase timer. Feeds `hist` (when non-null) and the thread's active
/// CommandTraceScope, if any. Construct through PVCDB_SPAN so the
/// histogram lookup happens once per call site.
class TraceSpan {
 public:
  /// A null `phase` constructs an inactive span (the sampled macro's
  /// skipped passages). `trace_scale` multiplies the measured time before
  /// it enters the active command trace -- 1 for exact spans, the sample
  /// rate for sampled ones (an unbiased estimate of the phase total). The
  /// histogram always receives the raw measured time.
  TraceSpan(const char* phase, Histogram* hist, uint32_t trace_scale = 1);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* phase_ = nullptr;  ///< Null when metrics are disabled.
  Histogram* hist_ = nullptr;
  uint32_t trace_scale_ = 1;
  WallTimer timer_;
};

/// RAII scope around one command: collects the TraceSpan timings completed
/// on this thread (worker-thread spans still feed their histograms but not
/// the per-command breakdown), then hands the finished trace to
/// TraceLog::Global(). Nestable; the innermost scope collects.
class CommandTraceScope {
 public:
  explicit CommandTraceScope(std::string command);
  ~CommandTraceScope();

  CommandTraceScope(const CommandTraceScope&) = delete;
  CommandTraceScope& operator=(const CommandTraceScope&) = delete;

  /// The thread's innermost active trace (null outside any scope).
  static CommandTrace* Active();

 private:
  bool active_ = false;
  CommandTrace trace_;
  CommandTrace* prev_ = nullptr;
  WallTimer timer_;
};

// -- Hot-path macros --------------------------------------------------------
//
// Each expands to a guarded relaxed atomic op with the registry lookup
// memoized in a function-local static. `name` must be a string literal (or
// otherwise identical across executions of the call site).

#if defined(PVCDB_METRICS_OFF)

#define PVCDB_COUNTER_ADD(name, n) \
  do {                             \
  } while (0)
#define PVCDB_GAUGE_SET(name, v) \
  do {                           \
  } while (0)
#define PVCDB_HIST_OBSERVE(name, value) \
  do {                                  \
  } while (0)
#define PVCDB_HIST_OBSERVE_IN(name, bounds, value) \
  do {                                             \
  } while (0)
#define PVCDB_SPAN(var, phase) \
  do {                         \
  } while (0)
#define PVCDB_SPAN_SAMPLED(var, phase, rate) \
  do {                                       \
  } while (0)

#else

#define PVCDB_COUNTER_ADD(name, n)                                      \
  do {                                                                  \
    if (pvcdb::MetricsEnabled()) {                                      \
      static pvcdb::Counter* pvcdb_metrics_counter =                    \
          pvcdb::MetricsRegistry::Global().GetCounter(name);            \
      pvcdb_metrics_counter->Increment(                                 \
          static_cast<uint64_t>(n));                                    \
    }                                                                   \
  } while (0)

#define PVCDB_GAUGE_SET(name, v)                                        \
  do {                                                                  \
    if (pvcdb::MetricsEnabled()) {                                      \
      static pvcdb::Gauge* pvcdb_metrics_gauge =                        \
          pvcdb::MetricsRegistry::Global().GetGauge(name);              \
      pvcdb_metrics_gauge->Set(static_cast<int64_t>(v));                \
    }                                                                   \
  } while (0)

/// Observe into a histogram with the default latency-ms buckets.
#define PVCDB_HIST_OBSERVE(name, value)                                 \
  do {                                                                  \
    if (pvcdb::MetricsEnabled()) {                                      \
      static pvcdb::Histogram* pvcdb_metrics_hist =                     \
          pvcdb::MetricsRegistry::Global().GetHistogram(name);          \
      pvcdb_metrics_hist->Observe(static_cast<double>(value));          \
    }                                                                   \
  } while (0)

/// Observe into a histogram with explicit buckets (e.g.
/// Histogram::CountBuckets() for group-commit batch sizes).
#define PVCDB_HIST_OBSERVE_IN(name, bounds, value)                      \
  do {                                                                  \
    if (pvcdb::MetricsEnabled()) {                                      \
      static pvcdb::Histogram* pvcdb_metrics_hist =                     \
          pvcdb::MetricsRegistry::Global().GetHistogram(name, bounds);  \
      pvcdb_metrics_hist->Observe(static_cast<double>(value));          \
    }                                                                   \
  } while (0)

/// Declares a TraceSpan named `var` timing `phase` (a string literal)
/// into the "phase.<phase>.ms" histogram for the rest of the scope.
#define PVCDB_SPAN(var, phase)                                          \
  static pvcdb::Histogram* var##_hist =                                 \
      pvcdb::MetricsRegistry::Global().GetHistogram("phase." phase      \
                                                    ".ms");             \
  pvcdb::TraceSpan var(phase, var##_hist)

/// PVCDB_SPAN for call sites too hot to time every passage (the per-row
/// step II pipeline): times 1 of every `rate` passages per thread, at a
/// skipped-passage cost of one thread-local increment. The histogram sees
/// the sampled passages' raw timings (so the bucket shape is right and
/// the count is the *sample* count); the active command trace receives
/// ms x rate, an unbiased estimate of the phase's per-command total, so
/// slow-query breakdowns of large commands stay approximately right.
#define PVCDB_SPAN_SAMPLED(var, phase, rate)                            \
  static pvcdb::Histogram* var##_hist =                                 \
      pvcdb::MetricsRegistry::Global().GetHistogram("phase." phase      \
                                                    ".ms");             \
  static thread_local uint32_t var##_tick = 0;                          \
  pvcdb::TraceSpan var((var##_tick++ % (rate)) == 0 ? phase : nullptr,  \
                       var##_hist, (rate))

#endif  // PVCDB_METRICS_OFF

}  // namespace pvcdb

#endif  // PVCDB_UTIL_METRICS_H_
