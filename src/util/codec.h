// Little-endian binary encoding helpers shared by the WAL record and
// snapshot formats (src/engine/wal.h, src/engine/snapshot.h).
//
// The encoding is explicitly byte-ordered (independent of host endianness
// and of struct layout), so a WAL written on one machine replays on any
// other. Readers are bounds-checked: a decode past the end of the buffer
// flips the reader into a sticky failed state instead of reading garbage --
// recovery treats a failed decode exactly like a corrupt record.

#ifndef PVCDB_UTIL_CODEC_H_
#define PVCDB_UTIL_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace pvcdb {

// -- Encoding (append to a std::string buffer) ------------------------------

inline void EncodeU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

inline void EncodeU32(std::string* out, uint32_t v) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<char>(v >> (8 * i));
  out->append(bytes, 4);
}

inline void EncodeU64(std::string* out, uint64_t v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>(v >> (8 * i));
  out->append(bytes, 8);
}

inline void EncodeI64(std::string* out, int64_t v) {
  EncodeU64(out, static_cast<uint64_t>(v));
}

/// Doubles travel as their IEEE-754 bit pattern: decoding reproduces the
/// written value bit for bit (the durability layer's identity contract).
inline void EncodeDouble(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  EncodeU64(out, bits);
}

inline void EncodeString(std::string* out, const std::string& s) {
  EncodeU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

// -- Decoding ---------------------------------------------------------------

/// Bounds-checked cursor over an encoded buffer. After any out-of-bounds
/// read, ok() is false and every subsequent read returns a zero value; the
/// caller checks ok() once at the end.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::string& buffer)
      : ByteReader(buffer.data(), buffer.size()) {}

  bool ok() const { return ok_; }
  size_t position() const { return pos_; }
  size_t remaining() const { return ok_ ? size_ - pos_ : 0; }
  bool AtEnd() const { return pos_ >= size_; }

  uint8_t ReadU8() {
    if (!Require(1)) return 0;
    return static_cast<uint8_t>(data_[pos_++]);
  }

  uint32_t ReadU32() {
    if (!Require(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  uint64_t ReadU64() {
    if (!Require(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  int64_t ReadI64() { return static_cast<int64_t>(ReadU64()); }

  double ReadDouble() {
    uint64_t bits = ReadU64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string ReadString() {
    uint32_t n = ReadU32();
    if (!Require(n)) return std::string();
    std::string s(data_ + pos_, n);
    pos_ += n;
    return s;
  }

  /// Marks the reader failed (decoders call this on a bad tag).
  void Fail() { ok_ = false; }

 private:
  bool Require(size_t n) {
    if (!ok_ || size_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace pvcdb

#endif  // PVCDB_UTIL_CODEC_H_
