#include "src/util/check.h"

#include <sstream>

namespace pvcdb {
namespace internal {

void CheckFail(const char* condition, const char* file, int line,
               const std::string& message) {
  std::ostringstream out;
  out << "PVC_CHECK failed: " << condition << " at " << file << ":" << line;
  if (!message.empty()) {
    out << " -- " << message;
  }
  throw CheckError(out.str());
}

}  // namespace internal
}  // namespace pvcdb
