// The file-system seam of the durability layer.
//
// Everything the WAL writer, the snapshot writer and recovery touch on
// disk goes through this FileSystem interface, for one reason: the crash
// tests (tests/crash_injection.h) substitute a fault-injecting
// implementation that fails or tears writes after a byte budget, so every
// interesting partial-write state is reachable deterministically without
// actually killing a process. DefaultFileSystem() is the POSIX-backed
// implementation used in production.
//
// Failure convention: operations return false (or nullptr) on failure and
// fill `*error` with a human-readable message when an error out-param is
// accepted. Durability code treats every failure as "the process may have
// died here" -- the caller stops, and recovery takes over on next open.

#ifndef PVCDB_UTIL_IO_H_
#define PVCDB_UTIL_IO_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace pvcdb {

/// An append-only output file. Append() may perform a partial write before
/// failing (exactly what a crash mid-write leaves behind).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `n` bytes; false when (part of) the write failed.
  virtual bool Append(const void* data, size_t n) = 0;

  /// Flushes application and OS buffers to stable storage (fsync).
  virtual bool Sync() = 0;

  /// Flushes and closes; the destructor closes without flushing.
  virtual bool Close() = 0;
};

/// Minimal file-system interface: exactly the operations the durability
/// layer needs, no more.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Opens `path` for appending (created when missing).
  virtual std::unique_ptr<WritableFile> OpenForAppend(
      const std::string& path, std::string* error) = 0;

  /// Reads the whole of `path` into `*out`.
  virtual bool ReadFile(const std::string& path, std::string* out,
                        std::string* error) = 0;

  /// Shrinks `path` to `size` bytes (recovery cuts a torn WAL tail).
  virtual bool Truncate(const std::string& path, uint64_t size,
                        std::string* error) = 0;

  /// Atomically renames `from` to `to` (the snapshot publish step).
  virtual bool Rename(const std::string& from, const std::string& to,
                      std::string* error) = 0;

  virtual bool Remove(const std::string& path, std::string* error) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  /// Creates `path` (and missing parents) as a directory; true when it
  /// already exists.
  virtual bool CreateDir(const std::string& path, std::string* error) = 0;

  /// Plain file names (not paths) inside `path`, sorted ascending.
  virtual std::vector<std::string> ListDir(const std::string& path) = 0;
};

/// The POSIX-backed implementation (a process-lifetime singleton).
FileSystem* DefaultFileSystem();

/// `dir` + "/" + `name` (no trailing-slash duplication).
std::string JoinPath(const std::string& dir, const std::string& name);

}  // namespace pvcdb

#endif  // PVCDB_UTIL_IO_H_
