#include "src/util/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>

namespace pvcdb {
namespace {

/// %.9g, the JSON double rendering shared with bench/bench_util.h: short,
/// locale-independent, round-trips every value the metrics layer emits.
std::string FormatDouble(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", v);
  return buffer;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

thread_local CommandTrace* g_active_trace = nullptr;

}  // namespace

// -- Kill switches ----------------------------------------------------------

#if !defined(PVCDB_METRICS_OFF)
namespace metrics_internal {

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled(std::getenv("PVCDB_METRICS_OFF") ==
                                   nullptr);
  return enabled;
}

}  // namespace metrics_internal
#endif

void SetMetricsEnabled(bool enabled) {
#if defined(PVCDB_METRICS_OFF)
  (void)enabled;
#else
  metrics_internal::EnabledFlag().store(enabled, std::memory_order_relaxed);
#endif
}

// -- Histogram --------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i + 1 < bounds_.size(); ++i) {
    if (bounds_[i] >= bounds_[i + 1]) {
      bounds_.clear();  // Defensive: a bad spec degrades to one bucket.
      break;
    }
  }
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::Observe(double value) {
  size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.reserve(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snap.counts.push_back(counts_[i].load(std::memory_order_relaxed));
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& Histogram::LatencyBucketsMs() {
  static const std::vector<double> kBuckets = {
      0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 1000};
  return kBuckets;
}

const std::vector<double>& Histogram::CountBuckets() {
  static const std::vector<double> kBuckets = {1, 2, 4, 8, 16, 32, 64, 128,
                                               256};
  return kBuckets;
}

// -- Registry ---------------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  return GetHistogram(name, Histogram::LatencyBucketsMs());
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(bounds);
  return slot.get();
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, counter] : counters_) {
    MetricSnapshot snap;
    snap.kind = MetricSnapshot::Kind::kCounter;
    snap.name = name;
    snap.counter_value = counter->Value();
    out.push_back(std::move(snap));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricSnapshot snap;
    snap.kind = MetricSnapshot::Kind::kGauge;
    snap.name = name;
    snap.gauge_value = gauge->Value();
    out.push_back(std::move(snap));
  }
  for (const auto& [name, hist] : histograms_) {
    Histogram::Snapshot h = hist->Snap();
    MetricSnapshot snap;
    snap.kind = MetricSnapshot::Kind::kHistogram;
    snap.name = name;
    snap.bounds = std::move(h.bounds);
    snap.bucket_counts = std::move(h.counts);
    snap.observations = h.count;
    snap.sum = h.sum;
    out.push_back(std::move(snap));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

// -- Rendering --------------------------------------------------------------

namespace {

std::string HistogramCell(const MetricSnapshot& snap) {
  std::ostringstream out;
  out << "count=" << snap.observations;
  if (snap.observations > 0) {
    out << " mean=" << FormatDouble(snap.sum /
                                    static_cast<double>(snap.observations));
    for (size_t i = 0; i < snap.bucket_counts.size(); ++i) {
      if (snap.bucket_counts[i] == 0) continue;
      out << " le";
      if (i < snap.bounds.size()) {
        out << FormatDouble(snap.bounds[i]);
      } else {
        out << "inf";
      }
      out << ":" << snap.bucket_counts[i];
    }
  }
  return out.str();
}

}  // namespace

std::string RenderMetricsTable(const std::vector<MetricSnapshot>& entries) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"metric", "type", "value"});
  for (const MetricSnapshot& snap : entries) {
    switch (snap.kind) {
      case MetricSnapshot::Kind::kCounter:
        rows.push_back(
            {snap.name, "counter", std::to_string(snap.counter_value)});
        break;
      case MetricSnapshot::Kind::kGauge:
        rows.push_back({snap.name, "gauge",
                        std::to_string(snap.gauge_value)});
        break;
      case MetricSnapshot::Kind::kHistogram:
        rows.push_back({snap.name, "histogram", HistogramCell(snap)});
        break;
    }
  }
  std::vector<size_t> widths(3, 0);
  for (const auto& row : rows) {
    for (size_t c = 0; c < 3; ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  for (size_t r = 0; r < rows.size(); ++r) {
    out << "|";
    for (size_t c = 0; c < 3; ++c) {
      out << " " << rows[r][c]
          << std::string(widths[c] - rows[r][c].size(), ' ') << " |";
    }
    out << "\n";
    if (r == 0) {
      out << "|";
      for (size_t c = 0; c < 3; ++c) {
        out << std::string(widths[c] + 2, '-') << "|";
      }
      out << "\n";
    }
  }
  return out.str();
}

std::string RenderMetricsJson(const std::vector<MetricSnapshot>& entries) {
  std::ostringstream out;
  for (const MetricSnapshot& snap : entries) {
    out << "{\"metric\": \"" << JsonEscape(snap.name) << "\"";
    switch (snap.kind) {
      case MetricSnapshot::Kind::kCounter:
        out << ", \"type\": \"counter\", \"value\": " << snap.counter_value;
        break;
      case MetricSnapshot::Kind::kGauge:
        out << ", \"type\": \"gauge\", \"value\": " << snap.gauge_value;
        break;
      case MetricSnapshot::Kind::kHistogram: {
        out << ", \"type\": \"histogram\", \"count\": " << snap.observations
            << ", \"sum\": " << FormatDouble(snap.sum) << ", \"buckets\": [";
        for (size_t i = 0; i < snap.bucket_counts.size(); ++i) {
          if (i > 0) out << ", ";
          out << "{\"le\": ";
          if (i < snap.bounds.size()) {
            out << FormatDouble(snap.bounds[i]);
          } else {
            out << "\"inf\"";
          }
          out << ", \"count\": " << snap.bucket_counts[i] << "}";
        }
        out << "]";
        break;
      }
    }
    out << "}\n";
  }
  return out.str();
}

// -- Command tracing --------------------------------------------------------

TraceLog& TraceLog::Global() {
  static TraceLog* log = new TraceLog();
  return *log;
}

void TraceLog::Record(CommandTrace trace) {
  double slow_ms = slow_query_ms();
  if (slow_ms >= 0.0 && trace.total_ms >= slow_ms) {
    PVCDB_COUNTER_ADD("server.slow_queries", 1);
    // One structured line, key=value pairs then the command, so a scraper
    // splits on spaces up to cmd=.
    std::string line = "pvcdb slow-query total_ms=" +
                       FormatDouble(trace.total_ms);
    for (const PhaseTiming& phase : trace.phases) {
      line += " ";
      line += phase.phase;
      line += "_ms=" + FormatDouble(phase.ms);
    }
    std::string command = trace.command;
    std::replace(command.begin(), command.end(), '\n', ' ');
    line += " cmd=\"" + command + "\"";
    std::fprintf(stderr, "%s\n", line.c_str());
  }
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(std::move(trace));
  while (ring_.size() > kRingCapacity) ring_.pop_front();
}

std::vector<CommandTrace> TraceLog::Recent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<CommandTrace>(ring_.begin(), ring_.end());
}

void TraceLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
}

TraceSpan::TraceSpan(const char* phase, Histogram* hist,
                     uint32_t trace_scale) {
  if (phase == nullptr || !MetricsEnabled()) return;
  phase_ = phase;
  hist_ = hist;
  trace_scale_ = trace_scale;
  timer_.Reset();
}

TraceSpan::~TraceSpan() {
  if (phase_ == nullptr) return;
  double ms = timer_.ElapsedMillis();
  if (hist_ != nullptr) hist_->Observe(ms);
  if (CommandTrace* trace = g_active_trace) {
    // The trace takes the scaled time (x1 for exact spans, x rate for
    // sampled ones -- the unbiased per-command estimate).
    double scaled = ms * trace_scale_;
    // Aggregate repeated phases (per-row compile/step2 spans) into one
    // entry per phase name, so a 10k-row command traces as 6 phases, not
    // 20k. Phase names are string literals; the list stays tiny.
    for (PhaseTiming& existing : trace->phases) {
      if (std::strcmp(existing.phase, phase_) == 0) {
        existing.ms += scaled;
        return;
      }
    }
    trace->phases.push_back({phase_, scaled});
  }
}

CommandTraceScope::CommandTraceScope(std::string command) {
  if (!MetricsEnabled()) return;
  active_ = true;
  trace_.command = std::move(command);
  prev_ = g_active_trace;
  g_active_trace = &trace_;
  timer_.Reset();
}

CommandTraceScope::~CommandTraceScope() {
  if (!active_) return;
  g_active_trace = prev_;
  trace_.total_ms = timer_.ElapsedMillis();
  TraceLog::Global().Record(std::move(trace_));
}

CommandTrace* CommandTraceScope::Active() { return g_active_trace; }

}  // namespace pvcdb
