#include "src/tpch/tpch_queries.h"

#include "src/tpch/tpch_gen.h"

namespace pvcdb {

QueryPtr BuildTpchQ1(int64_t shipdate_cutoff) {
  QueryPtr filtered = Query::Select(
      Query::Scan("lineitem"),
      Predicate::ColCmpInt("l_shipdate", CmpOp::kLe, shipdate_cutoff));
  return Query::GroupAgg(filtered, {"l_returnflag", "l_linestatus"},
                         {{AggKind::kCount, "", "cnt"}});
}

QueryPtr BuildTpchQ2(Database* db, int64_t partkey,
                     const std::string& region_name) {
  // Aliased inner relations share the outer relations' random variables.
  if (!db->HasTable("partsupp_i")) {
    AddTableAlias(db, "partsupp", "partsupp_i", "i_");
    AddTableAlias(db, "supplier", "supplier_i", "i_");
    AddTableAlias(db, "nation", "nation_i", "i_");
    AddTableAlias(db, "region", "region_i", "i_");
  }

  // Outer join: part |x| partsupp |x| supplier |x| nation |x| region for
  // the fixed part and region; part/partsupp selections are pushed below
  // the joins (standard selection pushdown, same semantics).
  QueryPtr outer = Query::Select(Query::Scan("part"),
                                 Predicate::ColEqInt("p_partkey", partkey));
  outer = Query::Join(
      outer,
      Query::Select(Query::Scan("partsupp"),
                    Predicate::ColEqInt("ps_partkey", partkey)),
      Predicate::ColEqCol("p_partkey", "ps_partkey"));
  outer = Query::Join(outer, Query::Scan("supplier"),
                      Predicate::ColEqCol("ps_suppkey", "s_suppkey"));
  outer = Query::Join(outer, Query::Scan("nation"),
                      Predicate::ColEqCol("s_nationkey", "n_nationkey"));
  outer = Query::Join(
      outer,
      Query::Select(Query::Scan("region"),
                    Predicate::ColEqStr("r_name", region_name)),
      Predicate::ColEqCol("n_regionkey", "r_regionkey"));

  // Inner scalar subquery: minimum supply cost for that part within the
  // region, over the aliased relations.
  QueryPtr inner = Query::Select(
      Query::Scan("partsupp_i"),
      Predicate::ColEqInt("i_ps_partkey", partkey));
  inner = Query::Join(inner, Query::Scan("supplier_i"),
                      Predicate::ColEqCol("i_ps_suppkey", "i_s_suppkey"));
  inner = Query::Join(inner, Query::Scan("nation_i"),
                      Predicate::ColEqCol("i_s_nationkey", "i_n_nationkey"));
  inner = Query::Join(
      inner,
      Query::Select(Query::Scan("region_i"),
                    Predicate::ColEqStr("i_r_name", region_name)),
      Predicate::ColEqCol("i_n_regionkey", "i_r_regionkey"));
  inner = Query::GroupAgg(inner, {},
                          {{AggKind::kMin, "i_ps_supplycost", "min_cost"}});

  // Correlate: the outer supply cost equals the regional minimum.
  QueryPtr joined = Query::Product(outer, inner);
  joined = Query::Select(
      joined, Predicate::ColCmpCol("ps_supplycost", CmpOp::kEq, "min_cost"));
  return Query::Project(joined, {"s_name"});
}

}  // namespace pvcdb
