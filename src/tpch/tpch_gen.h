// Deterministic TPC-H-like data generator (the Experiment F substrate).
//
// Generates the eight TPC-H tables with TPC-H's schema shape, key
// structure and join fan-outs, scaled down so that scale factor 1.0
// produces ~10^5 lineitem tuples (the paper used dbgen up to 1 GB; our
// substitution preserves relative cardinalities and group sizes, which is
// what the experiment's scaling behaviour depends on -- see DESIGN.md).
// Every generated table is tuple-independent: each tuple carries a fresh
// Boolean variable with probability drawn from [prob_low, prob_high].
//
// Monetary values are fixed-point integers in cents; dates are integer day
// numbers in [0, 2557) (seven years, mirroring TPC-H's 1992-1998 range).

#ifndef PVCDB_TPCH_TPCH_GEN_H_
#define PVCDB_TPCH_TPCH_GEN_H_

#include <cstdint>

#include "src/engine/database.h"

namespace pvcdb {

/// Generator configuration.
struct TpchConfig {
  double scale_factor = 0.01;
  uint64_t seed = 7;
  /// Tuple-presence probabilities are uniform in [prob_low, prob_high].
  double prob_low = 0.5;
  double prob_high = 1.0;
};

/// Per-table cardinalities at a given scale factor.
struct TpchCardinalities {
  size_t region;
  size_t nation;
  size_t supplier;
  size_t part;
  size_t partsupp;
  size_t customer;
  size_t orders;
  size_t lineitem;
};

/// Cardinalities used for `scale_factor`.
TpchCardinalities TpchCardinalitiesFor(double scale_factor);

/// Generates all eight tables into `db` ("region", "nation", "supplier",
/// "part", "partsupp", "customer", "orders", "lineitem").
void GenerateTpch(Database* db, const TpchConfig& config);

/// Registers an aliased copy of `source` under `alias`: same rows and
/// annotations (hence the same random variables), with every column name
/// prefixed by `column_prefix`. Used to reference a relation a second time
/// in a query while keeping world-semantics consistent (e.g. the nested
/// aggregate of TPC-H Q2).
void AddTableAlias(Database* db, const std::string& source,
                   const std::string& alias, const std::string& column_prefix);

}  // namespace pvcdb

#endif  // PVCDB_TPCH_TPCH_GEN_H_
