// The two TPC-H queries of Experiment F (Section 7.2), expressed in Q.
//
// Q1 ("amount of business billed / shipped / returned", COUNT only):
//   $_{l_returnflag, l_linestatus; cnt <- COUNT(*)}
//       (sigma_{l_shipdate <= cutoff}(lineitem))
//
// Q2 ("supplier with minimum cost for a given part in a given region"):
//   pi_{s_name} sigma_{ps_supplycost = min_cost}(
//       part |x| partsupp |x| supplier |x| nation |x| region
//     x $_{0; min_cost <- MIN(i_ps_supplycost)}(
//           aliased partsupp |x| supplier |x| nation |x| region))
// with the part key and region name fixed, matching the paper's "for a
// given part in a given region". The nested aggregate references the same
// base relations through aliases sharing the outer relations' random
// variables, so correlations between the subquery and the outer join are
// preserved across possible worlds.

#ifndef PVCDB_TPCH_TPCH_QUERIES_H_
#define PVCDB_TPCH_TPCH_QUERIES_H_

#include <cstdint>

#include "src/engine/database.h"
#include "src/query/ast.h"

namespace pvcdb {

/// Builds TPC-H Q1 (COUNT-only variant, as in the paper).
QueryPtr BuildTpchQ1(int64_t shipdate_cutoff);

/// Builds TPC-H Q2 for one part and one region. Registers the aliased
/// inner relations ("partsupp_i", "supplier_i", "nation_i", "region_i",
/// column prefix "i_") in `db` if not present.
QueryPtr BuildTpchQ2(Database* db, int64_t partkey,
                     const std::string& region_name);

}  // namespace pvcdb

#endif  // PVCDB_TPCH_TPCH_QUERIES_H_
