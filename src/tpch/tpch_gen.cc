#include "src/tpch/tpch_gen.h"

#include <algorithm>
#include <string>
#include <vector>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace pvcdb {

namespace {

// Base cardinalities at SF 1.0 (1/60 of real TPC-H, keeping ratios).
constexpr size_t kBaseSupplier = 200;
constexpr size_t kBasePart = 3000;
constexpr size_t kBasePartsupp = 12000;  // 4 suppliers per part.
constexpr size_t kBaseCustomer = 2500;
constexpr size_t kBaseOrders = 25000;
constexpr size_t kBaseLineitem = 100000;  // ~4 lineitems per order.

constexpr int64_t kMaxDate = 2557;  // Seven years of day numbers.

size_t Scaled(size_t base, double sf) {
  return std::max<size_t>(1, static_cast<size_t>(base * sf));
}

const char* kRegionNames[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                              "MIDDLE EAST"};
const char* kReturnFlags[] = {"A", "N", "R"};
const char* kLineStatuses[] = {"F", "O"};

}  // namespace

TpchCardinalities TpchCardinalitiesFor(double scale_factor) {
  TpchCardinalities c;
  c.region = 5;
  c.nation = 25;
  c.supplier = Scaled(kBaseSupplier, scale_factor);
  c.part = Scaled(kBasePart, scale_factor);
  c.partsupp = Scaled(kBasePartsupp, scale_factor);
  c.customer = Scaled(kBaseCustomer, scale_factor);
  c.orders = Scaled(kBaseOrders, scale_factor);
  c.lineitem = Scaled(kBaseLineitem, scale_factor);
  return c;
}

void GenerateTpch(Database* db, const TpchConfig& config) {
  PVC_CHECK(db != nullptr);
  PVC_CHECK_MSG(config.scale_factor > 0, "scale factor must be positive");
  Rng rng(config.seed);
  TpchCardinalities n = TpchCardinalitiesFor(config.scale_factor);

  auto probability = [&]() {
    return rng.UniformDouble(config.prob_low, config.prob_high);
  };

  // region(r_regionkey, r_name)
  {
    Schema schema({{"r_regionkey", CellType::kInt},
                   {"r_name", CellType::kString}});
    std::vector<std::vector<Cell>> rows;
    std::vector<double> probs;
    for (size_t i = 0; i < n.region; ++i) {
      rows.push_back({Cell(static_cast<int64_t>(i)), Cell(kRegionNames[i % 5])});
      probs.push_back(probability());
    }
    db->AddTupleIndependentTable("region", std::move(schema), std::move(rows),
                                 std::move(probs));
  }

  // nation(n_nationkey, n_name, n_regionkey)
  {
    Schema schema({{"n_nationkey", CellType::kInt},
                   {"n_name", CellType::kString},
                   {"n_regionkey", CellType::kInt}});
    std::vector<std::vector<Cell>> rows;
    std::vector<double> probs;
    for (size_t i = 0; i < n.nation; ++i) {
      rows.push_back({Cell(static_cast<int64_t>(i)),
                      Cell("NATION_" + std::to_string(i)),
                      Cell(static_cast<int64_t>(i % n.region))});
      probs.push_back(probability());
    }
    db->AddTupleIndependentTable("nation", std::move(schema), std::move(rows),
                                 std::move(probs));
  }

  // supplier(s_suppkey, s_name, s_nationkey, s_acctbal)
  {
    Schema schema({{"s_suppkey", CellType::kInt},
                   {"s_name", CellType::kString},
                   {"s_nationkey", CellType::kInt},
                   {"s_acctbal", CellType::kInt}});
    std::vector<std::vector<Cell>> rows;
    std::vector<double> probs;
    for (size_t i = 0; i < n.supplier; ++i) {
      rows.push_back({Cell(static_cast<int64_t>(i)),
                      Cell("Supplier#" + std::to_string(i)),
                      Cell(rng.UniformInt(0, static_cast<int64_t>(n.nation) - 1)),
                      Cell(rng.UniformInt(-99999, 999999))});
      probs.push_back(probability());
    }
    db->AddTupleIndependentTable("supplier", std::move(schema),
                                 std::move(rows), std::move(probs));
  }

  // part(p_partkey, p_name, p_size, p_retailprice)
  {
    Schema schema({{"p_partkey", CellType::kInt},
                   {"p_name", CellType::kString},
                   {"p_size", CellType::kInt},
                   {"p_retailprice", CellType::kInt}});
    std::vector<std::vector<Cell>> rows;
    std::vector<double> probs;
    for (size_t i = 0; i < n.part; ++i) {
      rows.push_back({Cell(static_cast<int64_t>(i)),
                      Cell("Part#" + std::to_string(i)),
                      Cell(rng.UniformInt(1, 50)),
                      Cell(rng.UniformInt(90000, 200000))});
      probs.push_back(probability());
    }
    db->AddTupleIndependentTable("part", std::move(schema), std::move(rows),
                                 std::move(probs));
  }

  // partsupp(ps_partkey, ps_suppkey, ps_supplycost, ps_availqty):
  // four suppliers per part, TPC-H style.
  {
    Schema schema({{"ps_partkey", CellType::kInt},
                   {"ps_suppkey", CellType::kInt},
                   {"ps_supplycost", CellType::kInt},
                   {"ps_availqty", CellType::kInt}});
    std::vector<std::vector<Cell>> rows;
    std::vector<double> probs;
    for (size_t i = 0; i < n.partsupp; ++i) {
      int64_t partkey = static_cast<int64_t>(i / 4 % n.part);
      int64_t suppkey = rng.UniformInt(0, static_cast<int64_t>(n.supplier) - 1);
      rows.push_back({Cell(partkey), Cell(suppkey),
                      Cell(rng.UniformInt(100, 100000)),
                      Cell(rng.UniformInt(1, 9999))});
      probs.push_back(probability());
    }
    db->AddTupleIndependentTable("partsupp", std::move(schema),
                                 std::move(rows), std::move(probs));
  }

  // customer(c_custkey, c_name, c_nationkey, c_acctbal)
  {
    Schema schema({{"c_custkey", CellType::kInt},
                   {"c_name", CellType::kString},
                   {"c_nationkey", CellType::kInt},
                   {"c_acctbal", CellType::kInt}});
    std::vector<std::vector<Cell>> rows;
    std::vector<double> probs;
    for (size_t i = 0; i < n.customer; ++i) {
      rows.push_back({Cell(static_cast<int64_t>(i)),
                      Cell("Customer#" + std::to_string(i)),
                      Cell(rng.UniformInt(0, static_cast<int64_t>(n.nation) - 1)),
                      Cell(rng.UniformInt(-99999, 999999))});
      probs.push_back(probability());
    }
    db->AddTupleIndependentTable("customer", std::move(schema),
                                 std::move(rows), std::move(probs));
  }

  // orders(o_orderkey, o_custkey, o_orderdate, o_totalprice)
  {
    Schema schema({{"o_orderkey", CellType::kInt},
                   {"o_custkey", CellType::kInt},
                   {"o_orderdate", CellType::kInt},
                   {"o_totalprice", CellType::kInt}});
    std::vector<std::vector<Cell>> rows;
    std::vector<double> probs;
    for (size_t i = 0; i < n.orders; ++i) {
      rows.push_back({Cell(static_cast<int64_t>(i)),
                      Cell(rng.UniformInt(0, static_cast<int64_t>(n.customer) - 1)),
                      Cell(rng.UniformInt(0, kMaxDate - 1)),
                      Cell(rng.UniformInt(100000, 50000000))});
      probs.push_back(probability());
    }
    db->AddTupleIndependentTable("orders", std::move(schema), std::move(rows),
                                 std::move(probs));
  }

  // lineitem(l_orderkey, l_partkey, l_suppkey, l_quantity, l_extendedprice,
  //          l_discount, l_returnflag, l_linestatus, l_shipdate)
  {
    Schema schema({{"l_orderkey", CellType::kInt},
                   {"l_partkey", CellType::kInt},
                   {"l_suppkey", CellType::kInt},
                   {"l_quantity", CellType::kInt},
                   {"l_extendedprice", CellType::kInt},
                   {"l_discount", CellType::kInt},
                   {"l_returnflag", CellType::kString},
                   {"l_linestatus", CellType::kString},
                   {"l_shipdate", CellType::kInt}});
    std::vector<std::vector<Cell>> rows;
    std::vector<double> probs;
    for (size_t i = 0; i < n.lineitem; ++i) {
      int64_t orderkey = static_cast<int64_t>(i) %
                         static_cast<int64_t>(n.orders);
      int64_t shipdate = rng.UniformInt(0, kMaxDate - 1);
      rows.push_back({Cell(orderkey),
                      Cell(rng.UniformInt(0, static_cast<int64_t>(n.part) - 1)),
                      Cell(rng.UniformInt(0, static_cast<int64_t>(n.supplier) - 1)),
                      Cell(rng.UniformInt(1, 50)),
                      Cell(rng.UniformInt(100, 9000000)),
                      Cell(rng.UniformInt(0, 10)),  // Discount in percent.
                      Cell(kReturnFlags[rng.UniformInt(0, 2)]),
                      Cell(kLineStatuses[rng.UniformInt(0, 1)]),
                      Cell(shipdate)});
      probs.push_back(probability());
    }
    db->AddTupleIndependentTable("lineitem", std::move(schema),
                                 std::move(rows), std::move(probs));
  }
}

void AddTableAlias(Database* db, const std::string& source,
                   const std::string& alias,
                   const std::string& column_prefix) {
  PVC_CHECK(db != nullptr);
  const PvcTable& base = db->table(source);
  std::vector<Column> columns;
  columns.reserve(base.schema().NumColumns());
  for (const Column& c : base.schema().columns()) {
    columns.push_back({column_prefix + c.name, c.type});
  }
  PvcTable aliased{Schema(std::move(columns))};
  for (const Row& r : base.rows()) {
    aliased.AddRow(r.cells, r.annotation);
  }
  db->AddTable(alias, std::move(aliased));
}

}  // namespace pvcdb
