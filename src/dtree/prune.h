// Pruning rules for conditional expressions (Section 5, "Pruning
// Conditional Expressions").
//
// Comparisons of a semimodule sum against a constant can often be
// simplified before compilation:
//  - MIN:  [Sum_i Phi_i (x) m_i  <=  c]  ==  [Sum_{i: m_i <= c} ... <= c]
//    (terms whose value cannot influence the verdict are dropped; the
//    mirrored rules apply to MAX),
//  - SUM:  [Sum_i Phi_i (x) m_i  <=  c]  ==  1_S when Sum_i m_i <= c
//    (tautology / contradiction bounds; valid under the Boolean semiring
//    where each Phi_i contributes its m_i at most once).
//
// Pruning preserves the probability distribution of the comparison and can
// shrink exponential-size SUM distributions before they materialise.

#ifndef PVCDB_DTREE_PRUNE_H_
#define PVCDB_DTREE_PRUNE_H_

#include "src/expr/expr.h"

namespace pvcdb {

/// Rewrites a kCmp expression using the pruning rules. Returns the
/// (possibly unchanged) expression id; the result always has the same
/// probability distribution as the input. Non-kCmp inputs are returned
/// unchanged.
ExprId PruneComparison(ExprPool& pool, ExprId e);

}  // namespace pvcdb

#endif  // PVCDB_DTREE_PRUNE_H_
