// Approximate probability computation on partially compiled d-trees.
//
// The paper notes (Section 1) that decomposition trees also support
// *approximate* probability computation in the style of Olteanu, Huang and
// Koch [18]: compile only part of the expression and propagate probability
// *intervals* instead of exact values. An uncompiled subexpression of the
// Boolean semiring contributes the trivial bounds [0, 1]; the decomposition
// rules combine bounds monotonically:
//   - independent OR:   1 - (1-l)(1-r)   (monotone in both arguments)
//   - independent AND:  l * r
//   - mutex (Eq. 10):   Sum_s P_x[s] * bounds(Phi|x<-s)
// so the interval around P[Phi = 1] narrows as the compilation budget
// grows and collapses to the exact value when the budget suffices for full
// compilation.
//
// Only Boolean-semiring expressions are supported (the classic confidence
// computation setting); aggregate comparisons enter as kCmp nodes whose
// sides are compiled exactly when they are ground or cheap, and bounded
// otherwise.

#ifndef PVCDB_DTREE_APPROXIMATE_H_
#define PVCDB_DTREE_APPROXIMATE_H_

#include <cstdint>
#include <vector>

#include "src/expr/expr.h"
#include "src/prob/variable.h"

namespace pvcdb {

/// An interval [low, high] bounding P[Phi = 1].
struct ProbabilityBounds {
  double low = 0.0;
  double high = 1.0;

  double Width() const { return high - low; }
  double Midpoint() const { return (low + high) / 2.0; }
};

/// Knobs of the approximation.
struct ApproximateOptions {
  /// Budget on the number of expression nodes visited (decomposition steps
  /// plus Shannon branches); exceeding it yields [0, 1] for the remaining
  /// subexpressions.
  size_t node_budget = 10000;
};

/// Bounds on P[e = 1] for a Boolean-semiring expression `e` under the given
/// budget. Guarantees: low <= P <= high; a large enough budget returns the
/// exact value (width 0, up to floating point).
ProbabilityBounds ApproximateProbability(ExprPool* pool,
                                         const VariableTable& variables,
                                         ExprId e,
                                         ApproximateOptions options =
                                             ApproximateOptions());

/// Bounds for each of `exprs`, fanning items across up to `num_threads`
/// threads (0 = serial). Every item -- on the serial path too -- is first
/// cloned into a task-private pool, so `pool` is only read and the bounds
/// are bit-identical for every thread count.
std::vector<ProbabilityBounds> ApproximateBatch(
    const ExprPool& pool, const VariableTable& variables,
    const std::vector<ExprId>& exprs,
    ApproximateOptions options = ApproximateOptions(), int num_threads = 0);

/// Iteratively doubles the budget until the interval width drops below
/// `epsilon` (absolute-error approximation as in [18]) or the budget
/// reaches `max_budget`. Returns the final bounds.
ProbabilityBounds ApproximateToWidth(ExprPool* pool,
                                     const VariableTable& variables, ExprId e,
                                     double epsilon,
                                     size_t max_budget = 1 << 22);

}  // namespace pvcdb

#endif  // PVCDB_DTREE_APPROXIMATE_H_
