#include "src/dtree/probability.h"

#include <algorithm>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "src/util/check.h"
#include "src/util/parallel.h"

namespace pvcdb {

namespace {

// No-clamp sentinel for memo keys.
constexpr int64_t kNoClamp = std::numeric_limits<int64_t>::min();

// How deep below the root the parallel pass looks for independent subtree
// tasks. Deeper frontiers expose more parallelism but shrink per-task work.
constexpr int kMaxFrontierDepth = 4;

// A (node, clamp bound) subproblem; its distribution is a pure function of
// the d-tree, the variable table, and the semiring.
using SubtreeKey = std::pair<DTree::NodeId, int64_t>;

// Memo shared by the worker threads of one parallel computation. Every
// value stored is the exact distribution of its key, so concurrent lookups
// and duplicate inserts cannot change results, only save or waste work.
struct SharedMemo {
  std::mutex mutex;
  std::map<SubtreeKey, Distribution> memo;
};

class ProbabilityComputer {
 public:
  ProbabilityComputer(const DTree& tree, const VariableTable& variables,
                      const Semiring& semiring, ProbabilityOptions options)
      : tree_(tree),
        variables_(variables),
        semiring_(semiring),
        options_(options) {}

  /// Consults (and fills) `shared` in addition to the private memo; used by
  /// the parallel priming pass. May be null.
  void AttachSharedMemo(SharedMemo* shared) { shared_ = shared; }

  /// Moves the primed entries of `shared` into the private memo, so the
  /// final serial pass runs lock-free on warm entries.
  void AdoptSharedMemo(SharedMemo* shared) {
    std::unique_lock<std::mutex> lock(shared->mutex);
    for (auto& [key, dist] : shared->memo) {
      memo_.emplace(key, std::move(dist));
    }
    shared->memo.clear();
  }

  Distribution Compute(DTree::NodeId id, int64_t clamp) {
    SubtreeKey key = std::make_pair(id, clamp);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    if (shared_ != nullptr) {
      std::unique_lock<std::mutex> lock(shared_->mutex);
      auto shared_it = shared_->memo.find(key);
      if (shared_it != shared_->memo.end()) {
        Distribution result = shared_it->second;
        lock.unlock();
        memo_.emplace(key, result);
        return result;
      }
    }
    Distribution result = ComputeUncached(id, clamp);
    memo_.emplace(key, result);
    if (shared_ != nullptr) {
      std::unique_lock<std::mutex> lock(shared_->mutex);
      shared_->memo.emplace(key, result);
    }
    return result;
  }

  /// The deepest frontier of independent (node, clamp) subproblems within
  /// kMaxFrontierDepth levels of `root` that still has at least two tasks
  /// and at most `max_tasks`; empty when no such level exists. Clamp bounds
  /// are propagated exactly as ComputeUncached does, so primed memo entries
  /// land under the keys the serial pass will look up. (A mismatch would
  /// only waste the primed work, never change results.)
  std::vector<SubtreeKey> CollectFrontier(DTree::NodeId root,
                                          size_t max_tasks) {
    std::vector<SubtreeKey> level = {{root, kNoClamp}};
    std::vector<SubtreeKey> best;
    for (int depth = 0; depth < kMaxFrontierDepth; ++depth) {
      std::vector<SubtreeKey> next;
      std::set<SubtreeKey> seen;
      for (const SubtreeKey& task : level) {
        for (const SubtreeKey& child : ChildTasks(task)) {
          if (seen.insert(child).second) next.push_back(child);
        }
      }
      if (next.size() < 2 || next.size() > max_tasks) break;
      best = next;
      level = std::move(next);
    }
    return best;
  }

 private:
  // The (child, clamp) subproblems whose distributions ComputeUncached
  // would request for `task`; empty for leaves.
  std::vector<SubtreeKey> ChildTasks(const SubtreeKey& task) {
    const DTreeNode& n = tree_.node(task.first);
    std::vector<SubtreeKey> out;
    switch (n.kind) {
      case DTreeNodeKind::kLeafVar:
      case DTreeNodeKind::kLeafConst:
        break;
      case DTreeNodeKind::kOplus:
      case DTreeNodeKind::kMutex: {
        int64_t child_clamp = ClampBoundFor(n, task.second);
        for (DTree::NodeId c : n.children) out.push_back({c, child_clamp});
        break;
      }
      case DTreeNodeKind::kOdot:
        for (DTree::NodeId c : n.children) out.push_back({c, kNoClamp});
        break;
      case DTreeNodeKind::kOtimes:
        out.push_back({n.children[0], kNoClamp});
        out.push_back({n.children[1], ClampBoundFor(n, task.second)});
        break;
      case DTreeNodeKind::kCmp: {
        auto [lhs_clamp, rhs_clamp] = CmpClampBounds(n);
        out.push_back({n.children[0], lhs_clamp});
        out.push_back({n.children[1], rhs_clamp});
        break;
      }
    }
    return out;
  }

  // The clamp bounds ComputeUncached applies to the two sides of a kCmp
  // node (the c+1 overflow-bucket optimisation of Proposition 3).
  std::pair<int64_t, int64_t> CmpClampBounds(const DTreeNode& n) {
    int64_t lhs_clamp = kNoClamp;
    int64_t rhs_clamp = kNoClamp;
    if (options_.enable_sum_clamping) {
      DTree::NodeId lhs = n.children[0];
      DTree::NodeId rhs = n.children[1];
      const DTreeNode& ln = tree_.node(lhs);
      const DTreeNode& rn = tree_.node(rhs);
      if (rn.kind == DTreeNodeKind::kLeafConst && rn.value >= 0 &&
          ln.sort == ExprSort::kMonoid &&
          (ln.agg == AggKind::kSum || ln.agg == AggKind::kCount) &&
          ClampSafe(lhs)) {
        lhs_clamp = rn.value;
      }
      if (ln.kind == DTreeNodeKind::kLeafConst && ln.value >= 0 &&
          rn.sort == ExprSort::kMonoid &&
          (rn.agg == AggKind::kSum || rn.agg == AggKind::kCount) &&
          ClampSafe(rhs)) {
        rhs_clamp = ln.value;
      }
    }
    return {lhs_clamp, rhs_clamp};
  }

  // Clamps SUM/COUNT values at bound+1 so values beyond the comparison
  // constant share one overflow bucket.
  Distribution ApplyClamp(Distribution d, int64_t clamp) {
    if (clamp == kNoClamp) return d;
    return d.Map([clamp](int64_t v) { return std::min(v, clamp + 1); });
  }

  // Whether clamping may be propagated into this subtree: it requires a
  // SUM/COUNT-sorted monoid subtree whose constants are all non-negative
  // (a negative addend could move an overflowed partial sum back below the
  // bound, which the single overflow bucket cannot represent).
  bool ClampSafe(DTree::NodeId id) {
    auto it = clamp_safe_.find(id);
    if (it != clamp_safe_.end()) return it->second;
    const DTreeNode& n = tree_.node(id);
    bool safe = true;
    if (n.sort == ExprSort::kMonoid &&
        !(n.agg == AggKind::kSum || n.agg == AggKind::kCount)) {
      safe = false;
    }
    if (n.kind == DTreeNodeKind::kLeafConst &&
        n.sort == ExprSort::kMonoid && n.value < 0) {
      safe = false;
    }
    if (safe) {
      for (DTree::NodeId c : n.children) {
        // Semiring-sorted children (e.g. the left side of a tensor) do not
        // contribute monoid values; still check constants transitively only
        // through monoid-sorted nodes.
        const DTreeNode& cn = tree_.node(c);
        if (cn.sort == ExprSort::kMonoid && !ClampSafe(c)) {
          safe = false;
          break;
        }
      }
    }
    clamp_safe_[id] = safe;
    return safe;
  }

  Distribution ComputeUncached(DTree::NodeId id, int64_t clamp) {
    const DTreeNode& n = tree_.node(id);
    switch (n.kind) {
      case DTreeNodeKind::kLeafVar:
        return variables_.DistributionOf(n.var);
      case DTreeNodeKind::kLeafConst:
        return ApplyClamp(Distribution::Point(n.value), ClampBoundFor(n, clamp));
      case DTreeNodeKind::kOplus: {
        PVC_CHECK(!n.children.empty());
        int64_t child_clamp = ClampBoundFor(n, clamp);
        Distribution acc = Compute(n.children[0], child_clamp);
        for (size_t i = 1; i < n.children.size(); ++i) {
          Distribution next = Compute(n.children[i], child_clamp);
          if (n.sort == ExprSort::kSemiring) {
            acc = acc.Convolve(next, [this](int64_t a, int64_t b) {
              return semiring_.Plus(a, b);
            });
          } else {
            Monoid monoid(n.agg);
            acc = acc.Convolve(next, [&monoid](int64_t a, int64_t b) {
              return monoid.Plus(a, b);
            });
          }
          acc = ApplyClamp(std::move(acc), child_clamp);
        }
        return acc;
      }
      case DTreeNodeKind::kOdot: {
        PVC_CHECK(!n.children.empty());
        Distribution acc = Compute(n.children[0], kNoClamp);
        for (size_t i = 1; i < n.children.size(); ++i) {
          Distribution next = Compute(n.children[i], kNoClamp);
          acc = acc.Convolve(next, [this](int64_t a, int64_t b) {
            return semiring_.Times(a, b);
          });
        }
        return acc;
      }
      case DTreeNodeKind::kOtimes: {
        int64_t child_clamp = ClampBoundFor(n, clamp);
        Distribution s = Compute(n.children[0], kNoClamp);
        Distribution m = Compute(n.children[1], child_clamp);
        Monoid monoid(n.agg);
        Distribution result =
            s.Convolve(m, [this, &monoid](int64_t a, int64_t b) {
              return monoid.Tensor(semiring_, a, b);
            });
        return ApplyClamp(std::move(result), child_clamp);
      }
      case DTreeNodeKind::kCmp: {
        // When one side is a constant c and the other a non-negative
        // SUM/COUNT subtree, that side's values can be clamped at c+1.
        auto [lhs_clamp, rhs_clamp] = CmpClampBounds(n);
        Distribution l = Compute(n.children[0], lhs_clamp);
        Distribution r = Compute(n.children[1], rhs_clamp);
        CmpOp op = n.cmp;
        const Semiring& semiring = semiring_;
        return l.Convolve(r, [op, &semiring](int64_t a, int64_t b) {
          return EvalCmp(op, a, b) ? semiring.One() : semiring.Zero();
        });
      }
      case DTreeNodeKind::kMutex: {
        const Distribution& px = variables_.DistributionOf(n.var);
        std::vector<std::pair<double, Distribution>> parts;
        parts.reserve(n.children.size());
        int64_t child_clamp = ClampBoundFor(n, clamp);
        for (size_t i = 0; i < n.children.size(); ++i) {
          double weight = px.ProbOf(n.branch_values[i]);
          parts.emplace_back(weight, Compute(n.children[i], child_clamp));
        }
        return Distribution::Mix(parts);
      }
    }
    PVC_FAIL("unknown d-tree node kind");
  }

  // Propagates a clamp bound into a node: only monoid-sorted SUM/COUNT
  // nodes carry the clamp further down.
  int64_t ClampBoundFor(const DTreeNode& n, int64_t clamp) {
    if (clamp == kNoClamp) return kNoClamp;
    if (n.kind == DTreeNodeKind::kMutex || n.kind == DTreeNodeKind::kCmp) {
      // Mutex nodes keep the ambient clamp for their (same-sort) branches;
      // comparisons reset it (they decide their own clamps).
      return n.kind == DTreeNodeKind::kMutex ? clamp : kNoClamp;
    }
    if (n.sort == ExprSort::kMonoid &&
        (n.agg == AggKind::kSum || n.agg == AggKind::kCount)) {
      return clamp;
    }
    return kNoClamp;
  }

  const DTree& tree_;
  const VariableTable& variables_;
  const Semiring& semiring_;
  ProbabilityOptions options_;
  SharedMemo* shared_ = nullptr;
  std::map<SubtreeKey, Distribution> memo_;
  std::unordered_map<DTree::NodeId, bool> clamp_safe_;
};

}  // namespace

Distribution ComputeDistribution(const DTree& tree,
                                 const VariableTable& variables,
                                 const Semiring& semiring,
                                 ProbabilityOptions options) {
  PVC_CHECK_MSG(tree.size() > 0, "cannot compute distribution of empty tree");
  ProbabilityComputer computer(tree, variables, semiring, options);
  size_t threads = ResolveThreadCount(options.num_threads);
  if (threads > 1 && !InParallelWorker()) {
    // Parallel priming pass: compute a frontier of independent subtree
    // distributions concurrently into a shared memo, then let the ordinary
    // serial bottom-up pass below reduce over the primed values. Every
    // memo entry is the exact distribution of its subproblem, so the final
    // result is bit-identical to a fully serial run.
    std::vector<SubtreeKey> tasks =
        computer.CollectFrontier(tree.root(), threads * 32);
    if (tasks.size() >= 2) {
      SharedMemo shared;
      ParallelFor(options.num_threads, tasks.size(), [&](size_t i) {
        ProbabilityComputer sub(tree, variables, semiring, options);
        sub.AttachSharedMemo(&shared);
        sub.Compute(tasks[i].first, tasks[i].second);
      });
      computer.AdoptSharedMemo(&shared);
    }
  }
  return computer.Compute(tree.root(), kNoClamp);
}

double ProbabilityNonZero(const DTree& tree, const VariableTable& variables,
                          const Semiring& semiring,
                          ProbabilityOptions options) {
  Distribution d = ComputeDistribution(tree, variables, semiring, options);
  double zero = d.ProbOf(0);
  return std::max(0.0, d.TotalMass() - zero);
}

}  // namespace pvcdb
