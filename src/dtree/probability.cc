#include "src/dtree/probability.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/util/check.h"
#include "src/util/parallel.h"

namespace pvcdb {

namespace {

// No-clamp sentinel for memo keys.
constexpr int64_t kNoClamp = std::numeric_limits<int64_t>::min();

// A (node, clamp bound) subproblem; its distribution is a pure function of
// the d-tree, the variable table, and the semiring.
using SubtreeKey = std::pair<DTree::NodeId, int64_t>;

// Coarsening: subtrees whose estimated task count is at most
// total / (threads * kTasksPerThread) (with a floor of kMinTaskNodes)
// become single atomic tasks; everything above stays a one-node task.
constexpr size_t kTasksPerThread = 16;
constexpr size_t kMinTaskNodes = 48;

// Below this d-tree size the parallel pass cannot win; stay serial.
constexpr size_t kMinParallelTreeSize = 128;

// Shared subproblems below this exact size are cheaper to recompute than
// to exchange through the striped memo.
constexpr size_t kMinSharedSubtree = 16;

// -- Lock-striped shared memo ----------------------------------------------
//
// Workers of one parallel computation exchange pure subtree distributions
// here. Every value stored is the exact distribution of its key, so
// concurrent lookups and racing duplicate inserts cannot change results,
// only save or waste work.
class StripedMemo {
 public:
  bool Get(DTree::NodeId node, int64_t clamp, Distribution* out) {
    Stripe& s = StripeOf(node);
    std::unique_lock<std::mutex> lock(s.mutex);
    auto it = s.map.find(node);
    if (it == s.map.end()) return false;
    for (const auto& [c, dist] : it->second) {
      if (c == clamp) {
        *out = dist;
        return true;
      }
    }
    return false;
  }

  void Put(DTree::NodeId node, int64_t clamp, const Distribution& dist) {
    Stripe& s = StripeOf(node);
    std::unique_lock<std::mutex> lock(s.mutex);
    auto& list = s.map[node];
    for (const auto& [c, existing] : list) {
      if (c == clamp) return;  // A racing worker computed the same value.
    }
    list.emplace_back(clamp, dist);
  }

 private:
  static constexpr size_t kStripes = 64;

  struct Stripe {
    std::mutex mutex;
    // node -> (clamp, distribution) list; almost always one entry.
    std::unordered_map<uint32_t,
                       std::vector<std::pair<int64_t, Distribution>>>
        map;
  };

  Stripe& StripeOf(DTree::NodeId node) {
    return stripes_[(node * 2654435761u) % kStripes];
  }

  Stripe stripes_[kStripes];
};

// -- Iterative bottom-up kernel --------------------------------------------
//
// Computes (node, clamp) subproblem distributions with an explicit frame
// stack and a dense node-indexed memo (one inline slot per node plus an
// overflow map for the rare second clamp bound). Reductions fold children
// left to right exactly like the recursive formulation, so results are
// independent of how work is scheduled around the kernel.
class Kernel {
 public:
  Kernel(const DTree& tree, const VariableTable& variables,
         const Semiring& semiring, const ProbabilityOptions& options)
      : tree_(tree),
        variables_(variables),
        semiring_(semiring),
        options_(options),
        slots_(tree.size()),
        clamp_safe_(tree.size(), 0) {}

  /// Consult (and fill) `shared` for nodes flagged in `publish`; used by
  /// the parallel pass. Both may be null (serial mode).
  void AttachShared(StripedMemo* shared, const std::vector<uint8_t>* publish) {
    shared_ = shared;
    publish_ = publish;
  }

  /// The distribution of subproblem (id, clamp).
  const Distribution& Compute(DTree::NodeId id, int64_t clamp) {
    const Distribution* hit = Find(id, clamp);
    if (hit != nullptr) return *hit;
    Run(id, clamp);
    return *Find(id, clamp);
  }

  /// The child subproblems `Compute` would request for (id, clamp), in
  /// reduction order. Used by the parallel pass to enumerate the task DAG
  /// with exactly the keys the kernels will look up.
  void AppendChildTasks(DTree::NodeId id, int64_t clamp,
                        std::vector<SubtreeKey>* out) {
    const DTreeNode n = tree_.node(id);
    switch (n.kind) {
      case DTreeNodeKind::kLeafVar:
      case DTreeNodeKind::kLeafConst:
        return;
      case DTreeNodeKind::kOplus:
      case DTreeNodeKind::kMutex: {
        int64_t child_clamp = ClampBoundFor(n, clamp);
        for (DTree::NodeId c : n.children) out->push_back({c, child_clamp});
        return;
      }
      case DTreeNodeKind::kOdot:
        for (DTree::NodeId c : n.children) out->push_back({c, kNoClamp});
        return;
      case DTreeNodeKind::kOtimes:
        out->push_back({n.children[0], kNoClamp});
        out->push_back({n.children[1], ClampBoundFor(n, clamp)});
        return;
      case DTreeNodeKind::kCmp: {
        auto [lhs_clamp, rhs_clamp] = CmpClampBounds(n);
        out->push_back({n.children[0], lhs_clamp});
        out->push_back({n.children[1], rhs_clamp});
        return;
      }
    }
    PVC_FAIL("unknown d-tree node kind");
  }

 private:
  struct Slot {
    int64_t clamp = 0;
    bool filled = false;
    Distribution dist;
  };

  struct Frame {
    DTree::NodeId node = 0;
    int64_t clamp = kNoClamp;        ///< The subproblem's own clamp key.
    int64_t child_clamp = kNoClamp;  ///< Clamp of children / lhs side.
    int64_t rhs_clamp = kNoClamp;    ///< Clamp of the rhs side (kCmp).
    uint32_t next = 0;
    uint32_t mix_begin = 0;
    Distribution acc;
  };

  const Distribution* Find(DTree::NodeId id, int64_t clamp) const {
    const Slot& s = slots_[id];
    if (s.filled && s.clamp == clamp) return &s.dist;
    if (s.filled) {
      auto it = overflow_.find({id, clamp});
      if (it != overflow_.end()) return &it->second;
    }
    return nullptr;
  }

  void Store(DTree::NodeId id, int64_t clamp, Distribution dist) {
    if (shared_ != nullptr && (*publish_)[id] != 0) {
      shared_->Put(id, clamp, dist);
    }
    Slot& s = slots_[id];
    if (!s.filled) {
      s.filled = true;
      s.clamp = clamp;
      s.dist = std::move(dist);
      return;
    }
    if (s.clamp == clamp) return;
    overflow_.emplace(SubtreeKey{id, clamp}, std::move(dist));
  }

  /// Pushes subproblem (id, clamp), or settles it immediately (leaves, and
  /// shared-memo hits in parallel mode).
  void Push(DTree::NodeId id, int64_t clamp) {
    if (shared_ != nullptr && (*publish_)[id] != 0) {
      Distribution fetched;
      if (shared_->Get(id, clamp, &fetched)) {
        Slot& s = slots_[id];
        if (!s.filled) {
          s.filled = true;
          s.clamp = clamp;
          s.dist = std::move(fetched);
        } else if (s.clamp != clamp) {
          overflow_.emplace(SubtreeKey{id, clamp}, std::move(fetched));
        }
        return;
      }
    }
    const DTreeNode n = tree_.node(id);
    switch (n.kind) {
      case DTreeNodeKind::kLeafVar:
        Store(id, clamp, variables_.DistributionOf(n.var));
        return;
      case DTreeNodeKind::kLeafConst:
        Store(id, clamp,
              ApplyClamp(Distribution::Point(n.value), ClampBoundFor(n, clamp)));
        return;
      default:
        break;
    }
    Frame f;
    f.node = id;
    f.clamp = clamp;
    f.mix_begin = static_cast<uint32_t>(mix_arena_.size());
    switch (n.kind) {
      case DTreeNodeKind::kOplus:
      case DTreeNodeKind::kMutex:
      case DTreeNodeKind::kOtimes:
        f.child_clamp = ClampBoundFor(n, clamp);
        break;
      case DTreeNodeKind::kOdot:
        f.child_clamp = kNoClamp;
        break;
      case DTreeNodeKind::kCmp: {
        auto [lhs_clamp, rhs_clamp] = CmpClampBounds(n);
        f.child_clamp = lhs_clamp;
        f.rhs_clamp = rhs_clamp;
        break;
      }
      default:
        PVC_FAIL("unexpected leaf");
    }
    frames_.push_back(std::move(f));
  }

  /// The (child, clamp) subproblem frame `f` needs next.
  SubtreeKey ChildKey(const Frame& f, const DTreeNode& n) const {
    switch (n.kind) {
      case DTreeNodeKind::kOplus:
      case DTreeNodeKind::kMutex:
        return {n.children[f.next], f.child_clamp};
      case DTreeNodeKind::kOdot:
        return {n.children[f.next], kNoClamp};
      case DTreeNodeKind::kOtimes:
        return {n.children[f.next], f.next == 0 ? kNoClamp : f.child_clamp};
      case DTreeNodeKind::kCmp:
        return {n.children[f.next], f.next == 0 ? f.child_clamp : f.rhs_clamp};
      default:
        PVC_FAIL("unexpected leaf frame");
    }
  }

  void Run(DTree::NodeId root, int64_t root_clamp) {
    PVC_CHECK(frames_.empty());
    Push(root, root_clamp);
    while (!frames_.empty()) {
      Frame& f = frames_.back();
      const DTreeNode n = tree_.node(f.node);
      if (f.next < n.children.size()) {
        SubtreeKey key = ChildKey(f, n);
        const Distribution* child = Find(key.first, key.second);
        if (child == nullptr) {
          Push(key.first, key.second);
          continue;
        }
        Fold(&f, n, *child);
        ++f.next;
        continue;
      }
      Distribution result = Finalize(&f, n);
      mix_arena_.resize(f.mix_begin);
      DTree::NodeId id = f.node;
      int64_t clamp = f.clamp;
      frames_.pop_back();
      Store(id, clamp, std::move(result));
    }
  }

  /// Folds the freshly available child distribution into the frame,
  /// left to right -- the serial reduction order every schedule preserves.
  void Fold(Frame* f, const DTreeNode& n, const Distribution& child) {
    switch (n.kind) {
      case DTreeNodeKind::kOplus: {
        if (f->next == 0) {
          f->acc = child;
          return;
        }
        if (n.sort == ExprSort::kSemiring) {
          f->acc = f->acc.Convolve(child, [this](int64_t a, int64_t b) {
            return semiring_.Plus(a, b);
          });
        } else {
          Monoid monoid(n.agg);
          f->acc = f->acc.Convolve(child, [&monoid](int64_t a, int64_t b) {
            return monoid.Plus(a, b);
          });
        }
        f->acc = ApplyClamp(std::move(f->acc), f->child_clamp);
        return;
      }
      case DTreeNodeKind::kOdot: {
        if (f->next == 0) {
          f->acc = child;
          return;
        }
        f->acc = f->acc.Convolve(child, [this](int64_t a, int64_t b) {
          return semiring_.Times(a, b);
        });
        return;
      }
      case DTreeNodeKind::kOtimes: {
        if (f->next == 0) {
          f->acc = child;
          return;
        }
        Monoid monoid(n.agg);
        f->acc = f->acc.Convolve(child, [this, &monoid](int64_t a, int64_t b) {
          return monoid.Tensor(semiring_, a, b);
        });
        return;
      }
      case DTreeNodeKind::kCmp: {
        if (f->next == 0) {
          f->acc = child;
          return;
        }
        CmpOp op = n.cmp;
        const Semiring& semiring = semiring_;
        f->acc = f->acc.Convolve(child, [op, &semiring](int64_t a, int64_t b) {
          return EvalCmp(op, a, b) ? semiring.One() : semiring.Zero();
        });
        return;
      }
      case DTreeNodeKind::kMutex: {
        double weight =
            variables_.DistributionOf(n.var).ProbOf(n.branch_values[f->next]);
        mix_arena_.emplace_back(weight, child);
        return;
      }
      default:
        PVC_FAIL("unexpected leaf frame");
    }
  }

  Distribution Finalize(Frame* f, const DTreeNode& n) {
    switch (n.kind) {
      case DTreeNodeKind::kOplus: {
        PVC_CHECK(!n.children.empty());
        return std::move(f->acc);
      }
      case DTreeNodeKind::kOdot:
        PVC_CHECK(!n.children.empty());
        return std::move(f->acc);
      case DTreeNodeKind::kOtimes:
        return ApplyClamp(std::move(f->acc), f->child_clamp);
      case DTreeNodeKind::kCmp:
        return std::move(f->acc);
      case DTreeNodeKind::kMutex:
        return Distribution::Mix(mix_arena_.data() + f->mix_begin,
                                 mix_arena_.size() - f->mix_begin);
      default:
        PVC_FAIL("unexpected leaf frame");
    }
  }

  // The clamp bounds applied to the two sides of a kCmp node (the c+1
  // overflow-bucket optimisation of Proposition 3).
  std::pair<int64_t, int64_t> CmpClampBounds(const DTreeNode& n) {
    int64_t lhs_clamp = kNoClamp;
    int64_t rhs_clamp = kNoClamp;
    if (options_.enable_sum_clamping) {
      DTree::NodeId lhs = n.children[0];
      DTree::NodeId rhs = n.children[1];
      const DTreeNode ln = tree_.node(lhs);
      const DTreeNode rn = tree_.node(rhs);
      if (rn.kind == DTreeNodeKind::kLeafConst && rn.value >= 0 &&
          ln.sort == ExprSort::kMonoid &&
          (ln.agg == AggKind::kSum || ln.agg == AggKind::kCount) &&
          ClampSafe(lhs)) {
        lhs_clamp = rn.value;
      }
      if (ln.kind == DTreeNodeKind::kLeafConst && ln.value >= 0 &&
          rn.sort == ExprSort::kMonoid &&
          (rn.agg == AggKind::kSum || rn.agg == AggKind::kCount) &&
          ClampSafe(rhs)) {
        rhs_clamp = ln.value;
      }
    }
    return {lhs_clamp, rhs_clamp};
  }

  // Clamps SUM/COUNT values at bound+1 so values beyond the comparison
  // constant share one overflow bucket.
  static Distribution ApplyClamp(Distribution d, int64_t clamp) {
    if (clamp == kNoClamp) return d;
    return d.Map([clamp](int64_t v) { return std::min(v, clamp + 1); });
  }

  // Whether clamping may be propagated into this subtree: it requires a
  // SUM/COUNT-sorted monoid subtree whose constants are all non-negative
  // (a negative addend could move an overflowed partial sum back below the
  // bound, which the single overflow bucket cannot represent). Iterative
  // over the dense tri-state cache (0 unknown, 1 safe, 2 unsafe).
  bool ClampSafe(DTree::NodeId root) {
    if (clamp_safe_[root] != 0) return clamp_safe_[root] == 1;
    safe_stack_.clear();
    safe_stack_.push_back(root);
    while (!safe_stack_.empty()) {
      DTree::NodeId id = safe_stack_.back();
      if (clamp_safe_[id] != 0) {
        safe_stack_.pop_back();
        continue;
      }
      const DTreeNode n = tree_.node(id);
      if ((n.sort == ExprSort::kMonoid &&
           !(n.agg == AggKind::kSum || n.agg == AggKind::kCount)) ||
          (n.kind == DTreeNodeKind::kLeafConst &&
           n.sort == ExprSort::kMonoid && n.value < 0)) {
        clamp_safe_[id] = 2;
        safe_stack_.pop_back();
        continue;
      }
      // Semiring-sorted children (e.g. the left side of a tensor) do not
      // contribute monoid values; only monoid-sorted children are checked.
      bool ready = true;
      bool safe = true;
      for (DTree::NodeId c : n.children) {
        const DTreeNode cn = tree_.node(c);
        if (cn.sort != ExprSort::kMonoid) continue;
        if (clamp_safe_[c] == 0) {
          safe_stack_.push_back(c);
          ready = false;
        } else if (clamp_safe_[c] == 2) {
          safe = false;
        }
      }
      if (!ready) continue;
      clamp_safe_[id] = safe ? 1 : 2;
      safe_stack_.pop_back();
    }
    return clamp_safe_[root] == 1;
  }

  // Propagates a clamp bound into a node: only monoid-sorted SUM/COUNT
  // nodes carry the clamp further down.
  int64_t ClampBoundFor(const DTreeNode& n, int64_t clamp) {
    if (clamp == kNoClamp) return kNoClamp;
    if (n.kind == DTreeNodeKind::kMutex || n.kind == DTreeNodeKind::kCmp) {
      // Mutex nodes keep the ambient clamp for their (same-sort) branches;
      // comparisons reset it (they decide their own clamps).
      return n.kind == DTreeNodeKind::kMutex ? clamp : kNoClamp;
    }
    if (n.sort == ExprSort::kMonoid &&
        (n.agg == AggKind::kSum || n.agg == AggKind::kCount)) {
      return clamp;
    }
    return kNoClamp;
  }

  const DTree& tree_;
  const VariableTable& variables_;
  const Semiring& semiring_;
  ProbabilityOptions options_;
  StripedMemo* shared_ = nullptr;
  const std::vector<uint8_t>* publish_ = nullptr;

  std::vector<Slot> slots_;
  std::map<SubtreeKey, Distribution> overflow_;
  std::vector<uint8_t> clamp_safe_;
  std::vector<Frame> frames_;
  std::vector<std::pair<double, Distribution>> mix_arena_;
  std::vector<DTree::NodeId> safe_stack_;
};

// -- Intra-tree parallel pass ----------------------------------------------
//
// The subproblem DAG below the root is enumerated once and coarsened into
// *jobs*:
//
//   - subtrees of at most `grain` distinct subproblems become atomic
//     leaf-tasks, batched with their siblings into group jobs so tiny
//     subtrees never travel through the scheduler one by one;
//   - "interesting" over-grain tasks -- the root, branching points of the
//     over-grain skeleton, and wide nodes whose small children carry
//     grain-scale total work -- become single-task jobs that compute their
//     node (and any absorbed sequential spine below it) once their
//     descendant jobs have published;
//   - over-grain chains with a single over-grain child ("spines", e.g. deep
//     Shannon towers) are never scheduled: they are sequential by
//     construction, so the job above them computes them inline instead of
//     paying per-node scheduling.
//
// Jobs execute Kahn-style: dependency counts resolve through the coarsened
// graph, ready jobs feed per-worker work-stealing deques, and workers
// exchange pure subtree distributions through the lock-striped shared
// memo. Subtree sizes are *exact* bounded reachability counts (epoch-
// stamped scan with early exit), not tree-unfolded estimates -- a shared
// Shannon tower of linear DAG size coarsens into one task instead of a
// thousand.

// One (node, clamp) subproblem of the task DAG.
struct Task {
  DTree::NodeId node = 0;
  int64_t clamp = kNoClamp;
  uint32_t child_begin = 0;  ///< Range of child task indices.
  uint32_t child_count = 0;
  uint32_t refs = 0;  ///< Extra references beyond the first (DAG sharing).
  /// Distinct subproblems in this task's subtree; kOverGrain when the
  /// bounded scan exceeded the coarsening grain.
  uint32_t size = 1;
  uint32_t gt_children = 0;          ///< Children with size == kOverGrain.
  uint32_t atomic_child_size = 0;    ///< Total size of in-grain children.
  uint8_t state = 0;                 ///< DFS state.
  bool scheduled = false;            ///< Owns (or heads) a job.
  uint32_t job = kNoJob;             ///< Owning job of scheduled tasks.

  static constexpr uint32_t kOverGrain = static_cast<uint32_t>(-1);
  static constexpr uint32_t kNoJob = static_cast<uint32_t>(-1);
};

// A schedulable unit: one inner task, or a batch of atomic subtree tasks.
struct Job {
  uint32_t member_begin = 0;  ///< Range of task indices to Compute().
  uint32_t member_count = 0;
  uint32_t parent_begin = 0;  ///< Range of dependent job indices.
  uint32_t parent_count = 0;
  uint32_t deps = 0;  ///< Number of distinct child jobs to wait for.
};

struct TaskGraph {
  std::vector<Task> tasks;
  std::vector<uint32_t> children;  ///< Child task index arena.
  std::vector<Job> jobs;
  std::vector<uint32_t> members;  ///< Job member task indices.
  std::vector<uint32_t> parents;  ///< Job parent edges arena.
  std::vector<uint8_t> publish;   ///< Per d-tree node: publish to memo.
};

// Dense + overflow lookup of task indices by (node, clamp).
class TaskIndex {
 public:
  explicit TaskIndex(size_t num_nodes)
      : primary_(num_nodes, {kNoClamp, kNone}) {}

  uint32_t Lookup(DTree::NodeId node, int64_t clamp) const {
    const auto& [c, idx] = primary_[node];
    if (idx != kNone && c == clamp) return idx;
    auto it = overflow_.find({node, clamp});
    return it == overflow_.end() ? kNone : it->second;
  }

  void Insert(DTree::NodeId node, int64_t clamp, uint32_t idx) {
    auto& slot = primary_[node];
    if (slot.second == kNone) {
      slot = {clamp, idx};
      return;
    }
    overflow_.emplace(SubtreeKey{node, clamp}, idx);
  }

  static constexpr uint32_t kNone = static_cast<uint32_t>(-1);

 private:
  std::vector<std::pair<int64_t, uint32_t>> primary_;
  std::map<SubtreeKey, uint32_t> overflow_;
};

// Enumerates the subproblem DAG, sizes subtrees exactly (bounded), chooses
// the scheduled skeleton, batches atomic siblings into group jobs, and
// wires job-level dependencies. Returns false when the coarsened graph is
// too small for the parallel pass to pay off.
bool BuildTaskGraph(const DTree& tree, Kernel* analysis, size_t threads,
                    TaskGraph* graph) {
  TaskIndex index(tree.size());
  std::vector<Task>& tasks = graph->tasks;
  std::vector<uint32_t>& child_arena = graph->children;

  auto intern_task = [&](DTree::NodeId node, int64_t clamp) {
    uint32_t idx = index.Lookup(node, clamp);
    if (idx != TaskIndex::kNone) {
      ++tasks[idx].refs;
      return idx;
    }
    idx = static_cast<uint32_t>(tasks.size());
    Task t;
    t.node = node;
    t.clamp = clamp;
    tasks.push_back(t);
    index.Insert(node, clamp, idx);
    return idx;
  };

  // Pass 1: enumerate the DAG in postorder.
  tasks.reserve(tree.size() + tree.size() / 4);
  child_arena.reserve(tree.size() * 2);
  std::vector<uint32_t> postorder;
  postorder.reserve(tree.size());
  std::vector<SubtreeKey> child_keys;
  std::vector<uint32_t> dfs = {intern_task(tree.root(), kNoClamp)};
  while (!dfs.empty()) {
    uint32_t t = dfs.back();
    if (tasks[t].state == 2) {
      dfs.pop_back();
      continue;
    }
    if (tasks[t].state == 0) {
      tasks[t].state = 1;
      child_keys.clear();
      analysis->AppendChildTasks(tasks[t].node, tasks[t].clamp, &child_keys);
      uint32_t begin = static_cast<uint32_t>(child_arena.size());
      for (const SubtreeKey& key : child_keys) {
        child_arena.push_back(intern_task(key.first, key.second));
      }
      tasks[t].child_begin = begin;
      tasks[t].child_count = static_cast<uint32_t>(child_keys.size());
      for (uint32_t i = 0; i < tasks[t].child_count; ++i) {
        uint32_t c = child_arena[begin + i];
        if (tasks[c].state == 0) dfs.push_back(c);
      }
    } else {
      tasks[t].state = 2;
      postorder.push_back(t);
      dfs.pop_back();
    }
  }

  const uint32_t grain = static_cast<uint32_t>(std::max(
      kMinTaskNodes,
      tasks.size() / std::max<size_t>(threads, 1) / kTasksPerThread));

  // Pass 2 (bottom-up): subtree sizes without unfolding the DAG. The
  // children of independence nodes ((+), (.), (x), [theta]) are
  // variable-disjoint by the d-tree normal form, so summing their sizes is
  // exact; mutex branches are Shannon restrictions of one expression and
  // share almost all of their structure, so their size is modelled as the
  // largest branch plus one node per extra branch (linear, matching the
  // DAG growth of deep towers). Sizes only steer coarsening -- kernels
  // compute anything a job's cut missed inline -- so the approximation can
  // never affect results.
  for (uint32_t t : postorder) {
    Task& task = tasks[t];
    task.gt_children = 0;
    task.atomic_child_size = 0;
    uint64_t sum = 1;
    uint64_t max_child = 0;
    for (uint32_t i = 0; i < task.child_count; ++i) {
      const Task& c = tasks[child_arena[task.child_begin + i]];
      if (c.size == Task::kOverGrain) {
        ++task.gt_children;
      } else {
        task.atomic_child_size += c.size;
        sum += c.size;
        max_child = std::max<uint64_t>(max_child, c.size);
      }
    }
    if (task.gt_children > 0) {
      task.size = Task::kOverGrain;
      continue;
    }
    uint64_t size =
        tree.node(task.node).kind == DTreeNodeKind::kMutex && task.child_count > 0
            ? 1 + max_child + (task.child_count - 1)
            : sum;
    task.size = size > grain ? Task::kOverGrain
                             : static_cast<uint32_t>(size);
  }

  if (tasks[0].size != Task::kOverGrain) return false;  // Whole tree fits.

  // Pass 3: the scheduled skeleton. An over-grain task is scheduled when
  // it is the root, the anchor of a cut (no over-grain children), wide
  // enough that its small children alone carry grain-scale work, or a
  // *true* branching point -- several over-grain children of an
  // independence node, whose subtrees are variable-disjoint by the d-tree
  // normal form. Over-grain mutex "branches" share almost all of their
  // structure (they are Shannon restrictions of one expression), so mutex
  // towers are never split: the job above computes them inline instead of
  // paying per-node scheduling for sequential work.
  for (Task& task : tasks) {
    if (task.size != Task::kOverGrain) continue;
    bool branching = task.gt_children >= 2 &&
                     tree.node(task.node).kind != DTreeNodeKind::kMutex;
    task.scheduled = task.gt_children == 0 ||
                     task.atomic_child_size >= grain || branching;
  }
  tasks[0].scheduled = true;

  // Group the in-grain children of scheduled tasks into batch jobs of
  // roughly grain-sized total work. Each atomic task joins one job only
  // (shared subtrees are claimed by the first scheduled parent; later
  // parents just depend on that job).
  std::vector<Job>& jobs = graph->jobs;
  std::vector<uint32_t>& members = graph->members;
  auto close_group = [&](uint32_t begin) {
    if (begin == members.size()) return;
    Job job;
    job.member_begin = begin;
    job.member_count = static_cast<uint32_t>(members.size()) - begin;
    jobs.push_back(job);
  };
  for (uint32_t t = 0; t < tasks.size(); ++t) {
    if (!tasks[t].scheduled) continue;
    uint32_t group_begin = static_cast<uint32_t>(members.size());
    uint32_t group_size = 0;
    for (uint32_t i = 0; i < tasks[t].child_count; ++i) {
      uint32_t c = child_arena[tasks[t].child_begin + i];
      Task& child = tasks[c];
      if (child.size == Task::kOverGrain || child.job != Task::kNoJob) {
        continue;
      }
      child.job = static_cast<uint32_t>(jobs.size());
      members.push_back(c);
      group_size += child.size;
      if (group_size >= grain) {
        close_group(group_begin);
        group_begin = static_cast<uint32_t>(members.size());
        group_size = 0;
      }
    }
    close_group(group_begin);
  }
  size_t group_jobs = jobs.size();
  for (uint32_t t = 0; t < tasks.size(); ++t) {
    if (!tasks[t].scheduled) continue;
    tasks[t].job = static_cast<uint32_t>(jobs.size());
    Job job;
    job.member_begin = static_cast<uint32_t>(members.size());
    job.member_count = 1;
    members.push_back(t);
    jobs.push_back(job);
  }
  if (group_jobs == 0 || jobs.size() < threads + 1) return false;

  // Pass 4: job-level dependencies. A scheduled task depends on the jobs
  // owning the scheduled tasks and claimed atomic subtrees visible from
  // its children without crossing another scheduled task (unscheduled
  // spines are traversed, their inline subtrees ignored).
  std::vector<std::pair<uint32_t, uint32_t>> edges;  // (child job, parent).
  std::vector<uint32_t> job_stamp(jobs.size(), 0);
  std::vector<uint32_t> walk_stamp(tasks.size(), 0);
  uint32_t walk_epoch = 0;
  std::vector<uint32_t> walk;
  for (uint32_t t = 0; t < tasks.size(); ++t) {
    if (!tasks[t].scheduled) continue;
    ++walk_epoch;
    walk.clear();
    walk.push_back(t);
    walk_stamp[t] = walk_epoch;
    while (!walk.empty()) {
      uint32_t s = walk.back();
      walk.pop_back();
      const Task& st = tasks[s];
      for (uint32_t i = 0; i < st.child_count; ++i) {
        uint32_t c = child_arena[st.child_begin + i];
        if (walk_stamp[c] == walk_epoch) continue;
        walk_stamp[c] = walk_epoch;
        const Task& child = tasks[c];
        if (child.size == Task::kOverGrain && !child.scheduled) {
          walk.push_back(c);  // Inline skeleton: look through it.
          continue;
        }
        if (child.job == Task::kNoJob) continue;  // Inline atomic subtree.
        if (job_stamp[child.job] == walk_epoch) continue;
        job_stamp[child.job] = walk_epoch;
        edges.emplace_back(child.job, tasks[t].job);
        ++jobs[tasks[t].job].deps;
      }
    }
  }
  std::sort(edges.begin(), edges.end());
  std::vector<uint32_t> parent_count(jobs.size(), 0);
  for (const auto& [child, parent] : edges) ++parent_count[child];
  uint32_t offset = 0;
  for (uint32_t j = 0; j < jobs.size(); ++j) {
    jobs[j].parent_begin = offset;
    jobs[j].parent_count = parent_count[j];
    offset += parent_count[j];
  }
  graph->parents.resize(offset);
  std::vector<uint32_t> fill(jobs.size(), 0);
  for (const auto& [child, parent] : edges) {
    graph->parents[jobs[child].parent_begin + fill[child]++] = parent;
  }

  // Publish flags: results every dependent job reads from the shared memo
  // (scheduled tasks and claimed atomic subtree roots), plus subproblems
  // shared widely enough in the DAG that racing workers should reuse
  // rather than recompute them.
  graph->publish.assign(tree.size(), 0);
  for (const Task& task : tasks) {
    bool big_shared =
        task.refs > 0 &&  // Referenced at least twice in the DAG.
        (task.size == Task::kOverGrain || task.size >= kMinSharedSubtree);
    if (task.scheduled || task.job != Task::kNoJob || big_shared) {
      graph->publish[task.node] = 1;
    }
  }
  return true;
}

// Runs the jobs of `graph` over per-worker work-stealing deques; returns
// the root distribution.
Distribution RunTaskGraph(const DTree& tree, const VariableTable& variables,
                          const Semiring& semiring,
                          const ProbabilityOptions& options, size_t threads,
                          TaskGraph* graph) {
  const std::vector<Task>& tasks = graph->tasks;
  const std::vector<Job>& jobs = graph->jobs;
  StripedMemo shared;
  WorkStealingDeques deques(threads);
  std::unique_ptr<std::atomic<uint32_t>[]> deps(
      new std::atomic<uint32_t>[jobs.size()]);
  size_t seeded = 0;
  for (size_t j = 0; j < jobs.size(); ++j) {
    deps[j].store(jobs[j].deps, std::memory_order_relaxed);
  }
  for (size_t j = 0; j < jobs.size(); ++j) {
    if (jobs[j].deps == 0) {
      deques.Push(seeded++ % threads, static_cast<uint32_t>(j));
    }
  }
  std::atomic<size_t> remaining{jobs.size()};

  ParallelFor(static_cast<int>(threads), threads, [&](size_t worker) {
    // Worker-local kernel: its dense memo persists across this worker's
    // jobs (subproblem distributions are pure, so stale entries are
    // simply warm cache).
    Kernel kernel(tree, variables, semiring, options);
    kernel.AttachShared(&shared, &graph->publish);
    uint32_t idle_spins = 0;
    for (;;) {
      if (remaining.load(std::memory_order_acquire) == 0) return;
      uint32_t j;
      if (!deques.Pop(worker, &j) && !deques.Steal(worker, &j)) {
        // Brief backoff: the frontier can momentarily run dry while
        // predecessors are still in flight.
        if (++idle_spins < 16) {
          std::this_thread::yield();
        } else {
          std::this_thread::sleep_for(
              std::chrono::microseconds(idle_spins < 64 ? 100 : 500));
        }
        continue;
      }
      idle_spins = 0;
      const Job& job = jobs[j];
      try {
        for (uint32_t m = 0; m < job.member_count; ++m) {
          const Task& task = tasks[graph->members[job.member_begin + m]];
          kernel.Compute(task.node, task.clamp);
        }
      } catch (...) {
        // Release every worker before propagating (ParallelFor rethrows
        // the first exception on the caller).
        remaining.store(0, std::memory_order_release);
        throw;
      }
      for (uint32_t i = 0; i < job.parent_count; ++i) {
        uint32_t p = graph->parents[job.parent_begin + i];
        if (deps[p].fetch_sub(1, std::memory_order_acq_rel) == 1) {
          deques.Push(worker, p);
        }
      }
      remaining.fetch_sub(1, std::memory_order_acq_rel);
    }
  });

  Distribution result;
  PVC_CHECK_MSG(shared.Get(tree.root(), kNoClamp, &result),
                "intra-tree parallel pass did not produce the root");
  return result;
}

}  // namespace

Distribution ComputeDistribution(const DTree& tree,
                                 const VariableTable& variables,
                                 const Semiring& semiring,
                                 ProbabilityOptions options) {
  PVC_CHECK_MSG(tree.size() > 0, "cannot compute distribution of empty tree");
  size_t threads = ResolveThreadCount(options.num_threads);
  if (threads > 1 && !InParallelWorker() &&
      tree.size() >= kMinParallelTreeSize) {
    // Intra-tree parallel pass: enumerate and coarsen the subproblem DAG,
    // then execute it Kahn-style over work-stealing deques with a
    // lock-striped shared memo. Every memo entry is the exact distribution
    // of its subproblem and per-node reductions keep the serial order, so
    // the result is bit-identical to the serial pass below.
    Kernel analysis(tree, variables, semiring, options);
    TaskGraph graph;
    if (BuildTaskGraph(tree, &analysis, threads, &graph)) {
      return RunTaskGraph(tree, variables, semiring, options, threads,
                          &graph);
    }
  }
  Kernel kernel(tree, variables, semiring, options);
  return kernel.Compute(tree.root(), kNoClamp);
}

double ProbabilityNonZero(const DTree& tree, const VariableTable& variables,
                          const Semiring& semiring,
                          ProbabilityOptions options) {
  Distribution d = ComputeDistribution(tree, variables, semiring, options);
  double zero = d.ProbOf(0);
  return std::max(0.0, d.TotalMass() - zero);
}

}  // namespace pvcdb
