#include "src/dtree/joint.h"

#include <algorithm>
#include <unordered_map>

#include "src/dtree/probability.h"
#include "src/util/check.h"

namespace pvcdb {

namespace {

class JointComputer {
 public:
  JointComputer(ExprPool* pool, const VariableTable& variables,
                const CompileOptions& options)
      : pool_(pool), variables_(variables), options_(options) {}

  JointDistribution Compute(const std::vector<ExprId>& exprs) {
    // Find a variable shared by at least two expressions.
    std::unordered_map<VarId, int> seen_in;
    VarId shared = 0;
    double best_count = -1.0;
    bool found = false;
    for (ExprId e : exprs) {
      for (VarId v : pool_->VarsOf(e)) {
        if (++seen_in[v] == 2) {
          found = true;
        }
      }
    }
    if (found) {
      // Among shared variables, pick the one with most occurrences overall
      // (the paper's mutex heuristic applied to the joint expression).
      std::unordered_map<VarId, double> counts;
      for (ExprId e : exprs) pool_->CountVarOccurrences(e, &counts);
      for (const auto& [v, k] : seen_in) {
        if (k >= 2 && counts[v] > best_count) {
          best_count = counts[v];
          shared = v;
        }
      }
      // Mutex decomposition on the shared variable (Eq. 10 lifted to
      // tuples of expressions).
      JointDistribution result;
      for (const auto& [s, p] : variables_.DistributionOf(shared).entries()) {
        std::vector<ExprId> branch;
        branch.reserve(exprs.size());
        for (ExprId e : exprs) branch.push_back(pool_->Substitute(e, shared, s));
        JointDistribution sub = Compute(branch);
        for (const auto& [tuple, q] : sub) {
          result[tuple] += p * q;
        }
      }
      return result;
    }
    // Pairwise independent: the joint is the product of marginals.
    std::vector<Distribution> marginals;
    marginals.reserve(exprs.size());
    for (ExprId e : exprs) {
      DTree tree = CompileToDTree(pool_, &variables_, e, options_);
      marginals.push_back(
          ComputeDistribution(tree, variables_, pool_->semiring()));
    }
    JointDistribution result;
    std::vector<int64_t> tuple(exprs.size());
    CrossProduct(marginals, 0, 1.0, &tuple, &result);
    return result;
  }

 private:
  void CrossProduct(const std::vector<Distribution>& marginals, size_t index,
                    double prob, std::vector<int64_t>* tuple,
                    JointDistribution* out) {
    if (index == marginals.size()) {
      (*out)[*tuple] += prob;
      return;
    }
    for (const auto& [v, p] : marginals[index].entries()) {
      (*tuple)[index] = v;
      CrossProduct(marginals, index + 1, prob * p, tuple, out);
    }
  }

  ExprPool* pool_;
  const VariableTable& variables_;
  CompileOptions options_;
};

}  // namespace

JointDistribution ComputeJointDistribution(ExprPool* pool,
                                           const VariableTable& variables,
                                           const std::vector<ExprId>& exprs,
                                           CompileOptions options) {
  PVC_CHECK(pool != nullptr);
  PVC_CHECK_MSG(!exprs.empty(), "joint distribution needs >= 1 expression");
  JointComputer computer(pool, variables, options);
  return computer.Compute(exprs);
}

Distribution ConditionalAggregateDistribution(ExprPool* pool,
                                              const VariableTable& variables,
                                              ExprId agg_expr,
                                              ExprId annotation,
                                              CompileOptions options) {
  JointDistribution joint = ComputeJointDistribution(
      pool, variables, {agg_expr, annotation}, options);
  double present_mass = 0.0;
  std::vector<Distribution::Entry> entries;
  for (const auto& [tuple, p] : joint) {
    if (tuple[1] != 0) {  // Annotation != 0_S: the tuple is present.
      present_mass += p;
      entries.push_back({tuple[0], p});
    }
  }
  if (present_mass <= 0.0) return Distribution();
  for (auto& e : entries) e.second /= present_mass;
  return Distribution::FromPairs(std::move(entries));
}

}  // namespace pvcdb
