// Decomposition trees (d-trees), Definition 7.
//
// A d-tree is a normal form for semiring / semimodule expressions with five
// inner node types:
//   (+)  independent sum        -- children are variable-disjoint
//   (.)  independent product    -- children are variable-disjoint
//   (x)  independent tensor     -- semiring child independent of monoid one
//   [th] independent comparison -- the two compared sides are independent
//   |_|x mutually exclusive expansion on variable x (Shannon / Eq. 10)
// and leaves that are single variables or constants. Because children of
// the first four node types are independent random variables, probability
// distributions propagate bottom-up by convolution (Eqs. 4-9); mutex nodes
// combine children by a mixture weighted with P_x (Eq. 10), which yields
// Theorem 2's O(prod |p_i|) probability computation.
//
// Shared subexpressions compile to shared d-tree nodes, so a DTree is
// physically a DAG; each node's distribution is computed once.

#ifndef PVCDB_DTREE_DTREE_H_
#define PVCDB_DTREE_DTREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/expr/expr.h"

namespace pvcdb {

/// D-tree node kinds (Definition 7).
enum class DTreeNodeKind : uint8_t {
  kLeafVar,    ///< A random variable leaf.
  kLeafConst,  ///< A constant leaf (semiring or monoid value, per `sort`).
  kOplus,      ///< (+): sum of independent children (semiring or monoid).
  kOdot,       ///< (.): product of independent semiring children.
  kOtimes,     ///< (x): tensor of independent semiring and monoid children.
  kCmp,        ///< [theta]: comparison of two independent children.
  kMutex,      ///< |_|_x: mutually exclusive expansion on variable x.
};

/// One d-tree node. The `sort` is the sort of the *value* this node
/// produces (kCmp nodes produce semiring values even over monoid children).
struct DTreeNode {
  DTreeNodeKind kind;
  ExprSort sort = ExprSort::kSemiring;
  AggKind agg = AggKind::kSum;  ///< Monoid of monoid-sorted nodes.
  CmpOp cmp = CmpOp::kEq;       ///< Operator of kCmp nodes.
  VarId var = 0;                ///< Variable of kLeafVar / kMutex nodes.
  int64_t value = 0;            ///< Value of kLeafConst nodes.
  std::vector<uint32_t> children;
  /// For kMutex: the substituted semiring value s of each child branch
  /// (parallel to `children`); the branch weight is P_x[s].
  std::vector<int64_t> branch_values;
};

/// A compiled decomposition tree (physically a DAG over shared nodes).
class DTree {
 public:
  using NodeId = uint32_t;

  /// Appends a node; children must already exist.
  NodeId AddNode(DTreeNode node);

  const DTreeNode& node(NodeId id) const;

  size_t size() const { return nodes_.size(); }

  NodeId root() const { return root_; }
  void set_root(NodeId id) { root_ = id; }

  /// Number of kMutex nodes (how often Algorithm 1 fell back to Shannon
  /// expansion; 0 for expressions compiled with rules 1-4 only).
  size_t MutexCount() const;

  /// Multi-line indented rendering for debugging.
  std::string ToString() const;

 private:
  std::vector<DTreeNode> nodes_;
  NodeId root_ = 0;
};

}  // namespace pvcdb

#endif  // PVCDB_DTREE_DTREE_H_
