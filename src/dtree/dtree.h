// Decomposition trees (d-trees), Definition 7.
//
// A d-tree is a normal form for semiring / semimodule expressions with five
// inner node types:
//   (+)  independent sum        -- children are variable-disjoint
//   (.)  independent product    -- children are variable-disjoint
//   (x)  independent tensor     -- semiring child independent of monoid one
//   [th] independent comparison -- the two compared sides are independent
//   |_|x mutually exclusive expansion on variable x (Shannon / Eq. 10)
// and leaves that are single variables or constants. Because children of
// the first four node types are independent random variables, probability
// distributions propagate bottom-up by convolution (Eqs. 4-9); mutex nodes
// combine children by a mixture weighted with P_x (Eq. 10), which yields
// Theorem 2's O(prod |p_i|) probability computation.
//
// Shared subexpressions compile to shared d-tree nodes, so a DTree is
// physically a DAG; each node's distribution is computed once.
//
// Storage layout: nodes are fixed-size headers in one vector; child lists
// and mutex branch values live in shared arena vectors. Builders pass a
// DTreeNodeSpec (with plain std::vectors) to AddNode; readers get a
// DTreeNode *view* whose children/branch_values are spans into the arenas.
// Views returned by node() are invalidated by the next AddNode -- d-trees
// are built once (by the compiler) and read-only afterwards, so every
// reader sees stable spans.

#ifndef PVCDB_DTREE_DTREE_H_
#define PVCDB_DTREE_DTREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/expr/expr.h"
#include "src/util/span.h"

namespace pvcdb {

/// D-tree node kinds (Definition 7).
enum class DTreeNodeKind : uint8_t {
  kLeafVar,    ///< A random variable leaf.
  kLeafConst,  ///< A constant leaf (semiring or monoid value, per `sort`).
  kOplus,      ///< (+): sum of independent children (semiring or monoid).
  kOdot,       ///< (.): product of independent semiring children.
  kOtimes,     ///< (x): tensor of independent semiring and monoid children.
  kCmp,        ///< [theta]: comparison of two independent children.
  kMutex,      ///< |_|_x: mutually exclusive expansion on variable x.
};

/// Builder input of DTree::AddNode: one node with owned child / branch
/// lists (the compiler assembles these incrementally).
struct DTreeNodeSpec {
  DTreeNodeKind kind = DTreeNodeKind::kLeafConst;
  ExprSort sort = ExprSort::kSemiring;
  AggKind agg = AggKind::kSum;  ///< Monoid of monoid-sorted nodes.
  CmpOp cmp = CmpOp::kEq;       ///< Operator of kCmp nodes.
  VarId var = 0;                ///< Variable of kLeafVar / kMutex nodes.
  int64_t value = 0;            ///< Value of kLeafConst nodes.
  std::vector<uint32_t> children;
  /// For kMutex: the substituted semiring value s of each child branch
  /// (parallel to `children`); the branch weight is P_x[s].
  std::vector<int64_t> branch_values;
};

/// Read-only view of one d-tree node. The `sort` is the sort of the *value*
/// this node produces (kCmp nodes produce semiring values even over monoid
/// children). `children`/`branch_values` are spans into the owning DTree's
/// arenas, valid as long as the tree exists and no further AddNode runs.
struct DTreeNode {
  DTreeNodeKind kind;
  ExprSort sort;
  AggKind agg;
  CmpOp cmp;
  VarId var;
  int64_t value;
  Span<uint32_t> children;
  Span<int64_t> branch_values;
};

/// A compiled decomposition tree (physically a DAG over shared nodes).
class DTree {
 public:
  using NodeId = uint32_t;

  /// Appends a node; children must already exist. Invalidates outstanding
  /// node() views.
  NodeId AddNode(DTreeNodeSpec node);

  /// Allocation-free overload for the compiler's hot path; `branch_values`
  /// must be empty or parallel to `children` (kMutex).
  NodeId AddNode(DTreeNodeKind kind, ExprSort sort, AggKind agg, CmpOp cmp,
                 VarId var, int64_t value, Span<uint32_t> children,
                 Span<int64_t> branch_values);

  /// View of node `id` (cheap; by value).
  DTreeNode node(NodeId id) const;

  size_t size() const { return nodes_.size(); }

  NodeId root() const { return root_; }
  void set_root(NodeId id) { root_ = id; }

  /// Number of kMutex nodes (how often Algorithm 1 fell back to Shannon
  /// expansion; 0 for expressions compiled with rules 1-4 only).
  size_t MutexCount() const;

  /// Multi-line indented rendering for debugging.
  std::string ToString() const;

 private:
  /// Fixed-size per-node header; child / branch lists live in the arenas.
  struct NodeHeader {
    DTreeNodeKind kind;
    ExprSort sort;
    AggKind agg;
    CmpOp cmp;
    VarId var;
    int64_t value;
    uint32_t child_begin;  ///< Offset into child_arena_.
    uint32_t num_children;
    uint32_t branch_begin;  ///< Offset into branch_arena_ (kMutex only).
    uint32_t num_branches;  ///< Actual stored branch values (0 or children).
  };

  std::vector<NodeHeader> nodes_;
  std::vector<uint32_t> child_arena_;
  std::vector<int64_t> branch_arena_;
  NodeId root_ = 0;
};

}  // namespace pvcdb

#endif  // PVCDB_DTREE_DTREE_H_
