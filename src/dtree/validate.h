// Structural validation of compiled d-trees.
//
// Definition 7 imposes structural invariants that Algorithm 1 must
// establish: children of (+), (.), (x) and [theta] nodes represent
// *independent* (variable-disjoint) expressions, mutex nodes carry one
// branch per non-zero-probability value of their variable, and sorts/
// monoids are consistent. This validator re-checks those invariants on a
// compiled tree; it is used by the property tests and available to users
// debugging custom compilation pipelines.

#ifndef PVCDB_DTREE_VALIDATE_H_
#define PVCDB_DTREE_VALIDATE_H_

#include <string>

#include "src/dtree/dtree.h"
#include "src/prob/variable.h"

namespace pvcdb {

/// Outcome of validation.
struct ValidationResult {
  bool valid = true;
  std::string error;  ///< First violated invariant, for diagnostics.
};

/// Checks Definition 7's structural invariants on `tree`:
///  - decomposition nodes have variable-disjoint children,
///  - mutex nodes enumerate exactly the support of their variable,
///  - monoid-sorted inner nodes agree with their children's monoids,
///  - comparison nodes have same-sorted children,
///  - children indices are acyclic (enforced by construction) and reachable
///    sorts match the node kinds.
ValidationResult ValidateDTree(const DTree& tree,
                               const VariableTable& variables);

}  // namespace pvcdb

#endif  // PVCDB_DTREE_VALIDATE_H_
