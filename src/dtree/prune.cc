#include "src/dtree/prune.h"

#include <optional>
#include <vector>

#include "src/util/check.h"

namespace pvcdb {

namespace {

// Mirrors a comparison operator for swapped operands: a op b == b op' a.
CmpOp MirrorOp(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return CmpOp::kEq;
    case CmpOp::kNe:
      return CmpOp::kNe;
    case CmpOp::kLe:
      return CmpOp::kGe;
    case CmpOp::kGe:
      return CmpOp::kLe;
    case CmpOp::kLt:
      return CmpOp::kGt;
    case CmpOp::kGt:
      return CmpOp::kLt;
  }
  PVC_FAIL("unknown comparison operator");
}

// The constant monoid value of a summand's value part: m for kConstM and
// for kTensor with a constant m-part; nullopt otherwise.
std::optional<int64_t> TermValue(const ExprPool& pool, ExprId term) {
  const ExprNode& n = pool.node(term);
  if (n.kind == ExprKind::kConstM) return n.value;
  if (n.kind == ExprKind::kTensor) {
    const ExprNode& m = pool.node(n.child(1));
    if (m.kind == ExprKind::kConstM) return m.value;
  }
  return std::nullopt;
}

// True when the term is "definitely present": its semiring part is a
// non-zero constant (e.g. a bare monoid constant). Such terms always
// contribute m to the aggregate.
bool TermAlwaysPresent(const ExprPool& pool, ExprId term) {
  const ExprNode& n = pool.node(term);
  if (n.kind == ExprKind::kConstM) return true;
  if (n.kind == ExprKind::kTensor) {
    const ExprNode& s = pool.node(n.child(0));
    return s.kind == ExprKind::kConstS &&
           s.value != pool.semiring().Zero();
  }
  return false;
}

// MIN-monoid keep-predicate: should a term with value m be kept when
// comparing [min ... op c]? Dropping a term never changes the verdict when
// the kept terms alone decide it (see DESIGN.md for the case analysis).
bool KeepForMin(CmpOp op, int64_t m, int64_t c) {
  switch (op) {
    case CmpOp::kLe:  // [min <= c] iff some present term <= c.
    case CmpOp::kEq:  // [min = c] decided by terms <= c.
    case CmpOp::kNe:
    case CmpOp::kGt:  // [min > c] iff no present term <= c.
      return m <= c;
    case CmpOp::kLt:  // [min < c] iff some present term < c.
    case CmpOp::kGe:  // [min >= c] iff no present term < c.
      return m < c;
  }
  PVC_FAIL("unknown comparison operator");
}

// MAX-monoid mirror of KeepForMin.
bool KeepForMax(CmpOp op, int64_t m, int64_t c) {
  switch (op) {
    case CmpOp::kGe:
    case CmpOp::kEq:
    case CmpOp::kNe:
    case CmpOp::kLt:
      return m >= c;
    case CmpOp::kGt:
    case CmpOp::kLe:
      return m > c;
  }
  PVC_FAIL("unknown comparison operator");
}

// Interval of values a semimodule sum can realise across worlds:
// [lo, hi] derived from its terms' constant values and from which terms
// are "always present" (constant non-zero semiring part). Returns false
// when the side's shape is not analysable (non-constant values, PROD,
// negative SUM addends, non-Boolean semiring for SUM).
struct ValueInterval {
  int64_t lo;
  int64_t hi;
};

bool SideInterval(const ExprPool& pool, ExprId side, ValueInterval* out) {
  const ExprNode& n = pool.node(side);
  if (n.sort != ExprSort::kMonoid) return false;
  std::vector<ExprId> terms;
  if (n.kind == ExprKind::kAddM) {
    terms.assign(n.children().begin(), n.children().end());
  } else {
    terms = {side};
  }
  const AggKind agg = n.agg;
  if (agg == AggKind::kProd) return false;
  Monoid monoid(agg);
  bool is_sum = agg == AggKind::kSum || agg == AggKind::kCount;
  if (is_sum && pool.semiring().kind() != SemiringKind::kBool) return false;
  // Aggregate over all terms and over the always-present subset.
  int64_t all = monoid.Neutral();
  int64_t always = monoid.Neutral();
  for (ExprId t : terms) {
    std::optional<int64_t> v = TermValue(pool, t);
    if (!v.has_value()) return false;
    if (is_sum && *v < 0) return false;
    all = monoid.Plus(all, *v);
    if (TermAlwaysPresent(pool, t)) always = monoid.Plus(always, *v);
  }
  switch (agg) {
    case AggKind::kMin:
      // Realised min lies between "every term present" and "only the
      // always-present terms".
      out->lo = all;
      out->hi = always;
      return true;
    case AggKind::kMax:
      out->lo = always;
      out->hi = all;
      return true;
    case AggKind::kSum:
    case AggKind::kCount:
      out->lo = always;
      out->hi = all;
      return true;
    case AggKind::kProd:
      return false;
  }
  return false;
}

// Decides `[l theta r]` from the two sides' value intervals when the
// verdict is world-independent; nullopt otherwise.
std::optional<bool> DecideFromIntervals(CmpOp op, ValueInterval l,
                                        ValueInterval r) {
  switch (op) {
    case CmpOp::kLe:
      if (l.hi <= r.lo) return true;
      if (l.lo > r.hi) return false;
      return std::nullopt;
    case CmpOp::kLt:
      if (l.hi < r.lo) return true;
      if (l.lo >= r.hi) return false;
      return std::nullopt;
    case CmpOp::kGe:
      if (l.lo >= r.hi) return true;
      if (l.hi < r.lo) return false;
      return std::nullopt;
    case CmpOp::kGt:
      if (l.lo > r.hi) return true;
      if (l.hi <= r.lo) return false;
      return std::nullopt;
    case CmpOp::kEq:
      if (l.lo == l.hi && r.lo == r.hi && l.lo == r.lo) return true;
      if (l.hi < r.lo || r.hi < l.lo) return false;
      return std::nullopt;
    case CmpOp::kNe:
      if (l.lo == l.hi && r.lo == r.hi && l.lo == r.lo) return false;
      if (l.hi < r.lo || r.hi < l.lo) return true;
      return std::nullopt;
  }
  PVC_FAIL("unknown comparison operator");
}

}  // namespace

ExprId PruneComparison(ExprPool& pool, ExprId e) {
  const ExprNode& n = pool.node(e);
  if (n.kind != ExprKind::kCmp) return e;

  ExprId lhs = n.child(0);
  ExprId rhs = n.child(1);
  CmpOp op = n.cmp;
  // Normalise the constant to the right-hand side.
  if (pool.node(lhs).kind == ExprKind::kConstM) {
    std::swap(lhs, rhs);
    op = MirrorOp(op);
  }
  const ExprNode& ln = pool.node(lhs);
  const ExprNode& rn = pool.node(rhs);
  // Two-sided comparisons (Experiment E's workloads): decide from the
  // sides' world-independent value intervals when possible -- e.g. once
  // the always-present part of a SUM side exceeds a MAX side's largest
  // term, [MAX <= SUM] is a tautology and compilation can stop. This is
  // what makes growing the SUM side of Figure 10(b) *cheaper*.
  if (ln.sort == ExprSort::kMonoid && rn.sort == ExprSort::kMonoid &&
      rn.kind != ExprKind::kConstM && ln.kind != ExprKind::kConstM) {
    ValueInterval li;
    ValueInterval ri;
    if (SideInterval(pool, lhs, &li) && SideInterval(pool, rhs, &ri)) {
      std::optional<bool> verdict = DecideFromIntervals(op, li, ri);
      if (verdict.has_value()) {
        return pool.ConstS(*verdict ? pool.semiring().One()
                                    : pool.semiring().Zero());
      }
    }
    return e;
  }
  if (rn.kind != ExprKind::kConstM || ln.sort != ExprSort::kMonoid) return e;
  const int64_t c = rn.value;

  // Collect the summands of the left-hand side (a single tensor/constant
  // counts as a one-term sum).
  std::vector<ExprId> terms;
  if (ln.kind == ExprKind::kAddM) {
    terms.assign(ln.children().begin(), ln.children().end());
  } else {
    terms = {lhs};
  }
  // All terms must have constant monoid values for the rules to apply.
  std::vector<int64_t> values;
  values.reserve(terms.size());
  for (ExprId t : terms) {
    std::optional<int64_t> v = TermValue(pool, t);
    if (!v.has_value()) return e;
    values.push_back(*v);
  }

  const AggKind agg = ln.agg;
  if (agg == AggKind::kMin || agg == AggKind::kMax) {
    std::vector<ExprId> kept;
    kept.reserve(terms.size());
    for (size_t i = 0; i < terms.size(); ++i) {
      bool keep = agg == AggKind::kMin ? KeepForMin(op, values[i], c)
                                       : KeepForMax(op, values[i], c);
      if (keep) kept.push_back(terms[i]);
    }
    if (kept.size() == terms.size()) return e;
    return pool.Cmp(op, pool.AddM(agg, std::move(kept)), rhs);
  }

  if (agg == AggKind::kSum || agg == AggKind::kCount) {
    // The bounds reasoning needs each phi_i to contribute m_i at most once,
    // i.e. Boolean-semiring annotations, and non-negative values.
    if (pool.semiring().kind() != SemiringKind::kBool) return e;
    int64_t total = 0;
    int64_t base = 0;  // Contribution of always-present terms.
    for (size_t i = 0; i < terms.size(); ++i) {
      if (values[i] < 0) return e;
      total += values[i];
      if (TermAlwaysPresent(pool, terms[i])) base += values[i];
    }
    // The realised aggregate always lies in [base, total].
    auto verdict = [&]() -> std::optional<bool> {
      switch (op) {
        case CmpOp::kLe:
          if (total <= c) return true;
          if (base > c) return false;
          return std::nullopt;
        case CmpOp::kLt:
          if (total < c) return true;
          if (base >= c) return false;
          return std::nullopt;
        case CmpOp::kGe:
          if (base >= c) return true;
          if (total < c) return false;
          return std::nullopt;
        case CmpOp::kGt:
          if (base > c) return true;
          if (total <= c) return false;
          return std::nullopt;
        case CmpOp::kEq:
          if (c < base || c > total) return false;
          if (base == total && base == c) return true;
          return std::nullopt;
        case CmpOp::kNe:
          if (c < base || c > total) return true;
          if (base == total && base == c) return false;
          return std::nullopt;
      }
      PVC_FAIL("unknown comparison operator");
    }();
    if (verdict.has_value()) {
      return pool.ConstS(*verdict ? pool.semiring().One()
                                  : pool.semiring().Zero());
    }
  }
  return e;
}

}  // namespace pvcdb
