#include "src/dtree/dtree.h"

#include <sstream>

#include "src/util/check.h"

namespace pvcdb {

DTree::NodeId DTree::AddNode(DTreeNode node) {
  for (NodeId c : node.children) {
    PVC_CHECK_MSG(c < nodes_.size(), "d-tree child " << c << " out of range");
  }
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::move(node));
  return id;
}

const DTreeNode& DTree::node(NodeId id) const {
  PVC_CHECK_MSG(id < nodes_.size(), "invalid d-tree node id " << id);
  return nodes_[id];
}

size_t DTree::MutexCount() const {
  size_t count = 0;
  for (const DTreeNode& n : nodes_) {
    if (n.kind == DTreeNodeKind::kMutex) ++count;
  }
  return count;
}

namespace {

const char* KindLabel(DTreeNodeKind kind) {
  switch (kind) {
    case DTreeNodeKind::kLeafVar:
      return "var";
    case DTreeNodeKind::kLeafConst:
      return "const";
    case DTreeNodeKind::kOplus:
      return "(+)";
    case DTreeNodeKind::kOdot:
      return "(.)";
    case DTreeNodeKind::kOtimes:
      return "(x)";
    case DTreeNodeKind::kCmp:
      return "[cmp]";
    case DTreeNodeKind::kMutex:
      return "mutex";
  }
  return "?";
}

void Render(const DTree& tree, DTree::NodeId id, int depth,
            std::ostream& out) {
  const DTreeNode& n = tree.node(id);
  for (int i = 0; i < depth; ++i) out << "  ";
  out << KindLabel(n.kind);
  switch (n.kind) {
    case DTreeNodeKind::kLeafVar:
      out << " x" << n.var;
      break;
    case DTreeNodeKind::kLeafConst:
      out << " " << MonoidValueToString(n.value);
      break;
    case DTreeNodeKind::kCmp:
      out << " " << CmpOpName(n.cmp);
      break;
    case DTreeNodeKind::kMutex:
      out << " on x" << n.var;
      break;
    default:
      break;
  }
  if (n.sort == ExprSort::kMonoid) out << " :" << AggKindName(n.agg);
  out << "\n";
  for (size_t i = 0; i < n.children.size(); ++i) {
    if (n.kind == DTreeNodeKind::kMutex) {
      for (int j = 0; j < depth + 1; ++j) out << "  ";
      out << "<- x" << n.var << " = " << n.branch_values[i] << "\n";
      Render(tree, n.children[i], depth + 2, out);
    } else {
      Render(tree, n.children[i], depth + 1, out);
    }
  }
}

}  // namespace

std::string DTree::ToString() const {
  std::ostringstream out;
  if (!nodes_.empty()) Render(*this, root_, 0, out);
  return out.str();
}

}  // namespace pvcdb
