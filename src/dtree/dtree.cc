#include "src/dtree/dtree.h"

#include <sstream>

#include "src/util/check.h"

namespace pvcdb {

DTree::NodeId DTree::AddNode(DTreeNodeSpec node) {
  return AddNode(node.kind, node.sort, node.agg, node.cmp, node.var,
                 node.value, {node.children.data(), node.children.size()},
                 {node.branch_values.data(), node.branch_values.size()});
}

DTree::NodeId DTree::AddNode(DTreeNodeKind kind, ExprSort sort, AggKind agg,
                             CmpOp cmp, VarId var, int64_t value,
                             Span<uint32_t> children,
                             Span<int64_t> branch_values) {
  for (NodeId c : children) {
    PVC_CHECK_MSG(c < nodes_.size(), "d-tree child " << c << " out of range");
  }
  PVC_CHECK_MSG(
      branch_values.empty() || branch_values.size() == children.size(),
      "branch values must parallel the children");
  NodeId id = static_cast<NodeId>(nodes_.size());
  NodeHeader header;
  header.kind = kind;
  header.sort = sort;
  header.agg = agg;
  header.cmp = cmp;
  header.var = var;
  header.value = value;
  header.child_begin = static_cast<uint32_t>(child_arena_.size());
  header.num_children = static_cast<uint32_t>(children.size());
  header.branch_begin = static_cast<uint32_t>(branch_arena_.size());
  header.num_branches = static_cast<uint32_t>(branch_values.size());
  child_arena_.insert(child_arena_.end(), children.begin(), children.end());
  branch_arena_.insert(branch_arena_.end(), branch_values.begin(),
                       branch_values.end());
  nodes_.push_back(header);
  return id;
}

DTreeNode DTree::node(NodeId id) const {
  PVC_CHECK_MSG(id < nodes_.size(), "invalid d-tree node id " << id);
  const NodeHeader& h = nodes_[id];
  DTreeNode view;
  view.kind = h.kind;
  view.sort = h.sort;
  view.agg = h.agg;
  view.cmp = h.cmp;
  view.var = h.var;
  view.value = h.value;
  view.children = {child_arena_.data() + h.child_begin, h.num_children};
  view.branch_values = {branch_arena_.data() + h.branch_begin,
                        h.num_branches};
  return view;
}

size_t DTree::MutexCount() const {
  size_t count = 0;
  for (const NodeHeader& n : nodes_) {
    if (n.kind == DTreeNodeKind::kMutex) ++count;
  }
  return count;
}

namespace {

const char* KindLabel(DTreeNodeKind kind) {
  switch (kind) {
    case DTreeNodeKind::kLeafVar:
      return "var";
    case DTreeNodeKind::kLeafConst:
      return "const";
    case DTreeNodeKind::kOplus:
      return "(+)";
    case DTreeNodeKind::kOdot:
      return "(.)";
    case DTreeNodeKind::kOtimes:
      return "(x)";
    case DTreeNodeKind::kCmp:
      return "[cmp]";
    case DTreeNodeKind::kMutex:
      return "mutex";
  }
  return "?";
}

void Render(const DTree& tree, DTree::NodeId id, int depth,
            std::ostream& out) {
  const DTreeNode n = tree.node(id);
  for (int i = 0; i < depth; ++i) out << "  ";
  out << KindLabel(n.kind);
  switch (n.kind) {
    case DTreeNodeKind::kLeafVar:
      out << " x" << n.var;
      break;
    case DTreeNodeKind::kLeafConst:
      out << " " << MonoidValueToString(n.value);
      break;
    case DTreeNodeKind::kCmp:
      out << " " << CmpOpName(n.cmp);
      break;
    case DTreeNodeKind::kMutex:
      out << " on x" << n.var;
      break;
    default:
      break;
  }
  if (n.sort == ExprSort::kMonoid) out << " :" << AggKindName(n.agg);
  out << "\n";
  for (size_t i = 0; i < n.children.size(); ++i) {
    if (n.kind == DTreeNodeKind::kMutex) {
      for (int j = 0; j < depth + 1; ++j) out << "  ";
      out << "<- x" << n.var << " = " << n.branch_values[i] << "\n";
      Render(tree, n.children[i], depth + 2, out);
    } else {
      Render(tree, n.children[i], depth + 1, out);
    }
  }
}

}  // namespace

std::string DTree::ToString() const {
  std::ostringstream out;
  if (!nodes_.empty()) Render(*this, root_, 0, out);
  return out.str();
}

}  // namespace pvcdb
