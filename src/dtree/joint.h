// Joint probability distributions of several expressions (Section 5,
// "Compiling Joint Probability Distributions").
//
// A result tuple of an aggregate query may carry several semimodule
// expressions plus a conditional annotation; their joint distribution is
// obtained by mutex (Shannon) decomposition on shared variables until the
// expressions become pairwise independent, at which point the joint is the
// product of the marginals (each computed through its own d-tree).

#ifndef PVCDB_DTREE_JOINT_H_
#define PVCDB_DTREE_JOINT_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/dtree/compile.h"
#include "src/expr/expr.h"
#include "src/prob/distribution.h"
#include "src/prob/variable.h"

namespace pvcdb {

/// A joint distribution over k expressions: value tuple -> probability.
using JointDistribution = std::map<std::vector<int64_t>, double>;

/// Computes the joint distribution of `exprs` (pairwise correlations
/// allowed). Worst-case exponential in the number of shared variables.
JointDistribution ComputeJointDistribution(ExprPool* pool,
                                           const VariableTable& variables,
                                           const std::vector<ExprId>& exprs,
                                           CompileOptions options =
                                               CompileOptions());

/// Distribution of the aggregate `agg_expr` conditioned on the tuple being
/// present, i.e. P[alpha = v | Phi != 0_S]. Returns an empty distribution
/// when P[Phi != 0_S] = 0.
Distribution ConditionalAggregateDistribution(ExprPool* pool,
                                              const VariableTable& variables,
                                              ExprId agg_expr,
                                              ExprId annotation,
                                              CompileOptions options =
                                                  CompileOptions());

}  // namespace pvcdb

#endif  // PVCDB_DTREE_JOINT_H_
