#include "src/dtree/validate.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace pvcdb {

namespace {

class Validator {
 public:
  Validator(const DTree& tree, const VariableTable& variables)
      : tree_(tree), variables_(variables) {}

  ValidationResult Run() {
    if (tree_.size() == 0) {
      return Error("empty d-tree");
    }
    Visit(tree_.root());
    return result_;
  }

 private:
  ValidationResult Error(const std::string& message) {
    result_.valid = false;
    if (result_.error.empty()) result_.error = message;
    return result_;
  }

  // Sorted distinct variables below a node (memoised).
  const std::vector<VarId>& VarsBelow(DTree::NodeId id) {
    auto it = vars_.find(id);
    if (it != vars_.end()) return it->second;
    const DTreeNode& n = tree_.node(id);
    std::vector<VarId> vars;
    switch (n.kind) {
      case DTreeNodeKind::kLeafVar:
        vars = {n.var};
        break;
      case DTreeNodeKind::kLeafConst:
        break;
      case DTreeNodeKind::kMutex: {
        vars = {n.var};
        for (DTree::NodeId c : n.children) {
          const std::vector<VarId>& cv = VarsBelow(c);
          std::vector<VarId> merged;
          std::set_union(vars.begin(), vars.end(), cv.begin(), cv.end(),
                         std::back_inserter(merged));
          vars = std::move(merged);
        }
        break;
      }
      default: {
        for (DTree::NodeId c : n.children) {
          const std::vector<VarId>& cv = VarsBelow(c);
          std::vector<VarId> merged;
          std::set_union(vars.begin(), vars.end(), cv.begin(), cv.end(),
                         std::back_inserter(merged));
          vars = std::move(merged);
        }
        break;
      }
    }
    return vars_.emplace(id, std::move(vars)).first->second;
  }

  void Visit(DTree::NodeId id) {
    if (!result_.valid) return;
    if (visited_.count(id) > 0) return;
    visited_.insert(id);
    const DTreeNode& n = tree_.node(id);
    switch (n.kind) {
      case DTreeNodeKind::kLeafVar:
      case DTreeNodeKind::kLeafConst:
        if (!n.children.empty()) {
          Error("leaf node with children");
        }
        return;
      case DTreeNodeKind::kOplus:
      case DTreeNodeKind::kOdot:
      case DTreeNodeKind::kOtimes:
      case DTreeNodeKind::kCmp: {
        if (n.children.size() < 2 && n.kind != DTreeNodeKind::kOplus) {
          // (+) may legitimately have >= 1 child after component grouping;
          // the binary node kinds need both sides.
          if (n.children.size() < 2) {
            Error("decomposition node with fewer than two children");
            return;
          }
        }
        // Independence: pairwise variable-disjoint children.
        std::vector<VarId> seen;
        for (DTree::NodeId c : n.children) {
          const std::vector<VarId>& cv = VarsBelow(c);
          std::vector<VarId> overlap;
          std::set_intersection(seen.begin(), seen.end(), cv.begin(),
                                cv.end(), std::back_inserter(overlap));
          if (!overlap.empty()) {
            std::ostringstream out;
            out << "children of decomposition node " << id
                << " share variable x" << overlap.front();
            Error(out.str());
            return;
          }
          std::vector<VarId> merged;
          std::set_union(seen.begin(), seen.end(), cv.begin(), cv.end(),
                         std::back_inserter(merged));
          seen = std::move(merged);
        }
        // Monoid consistency for monoid-sorted (+) nodes.
        if (n.kind == DTreeNodeKind::kOplus &&
            n.sort == ExprSort::kMonoid) {
          for (DTree::NodeId c : n.children) {
            const DTreeNode& cn = tree_.node(c);
            if (cn.sort == ExprSort::kMonoid && cn.agg != n.agg) {
              Error("monoid mismatch under (+) node");
              return;
            }
          }
        }
        if (n.kind == DTreeNodeKind::kOtimes) {
          if (tree_.node(n.children[0]).sort != ExprSort::kSemiring ||
              tree_.node(n.children[1]).sort != ExprSort::kMonoid) {
            Error("(x) node requires a semiring left child and a monoid "
                  "right child");
            return;
          }
        }
        if (n.kind == DTreeNodeKind::kCmp) {
          if (tree_.node(n.children[0]).sort !=
              tree_.node(n.children[1]).sort) {
            Error("[theta] node children have different sorts");
            return;
          }
        }
        break;
      }
      case DTreeNodeKind::kMutex: {
        if (n.children.size() != n.branch_values.size()) {
          Error("mutex node branch/value count mismatch");
          return;
        }
        const Distribution& px = variables_.DistributionOf(n.var);
        if (n.children.size() != px.size()) {
          Error("mutex node does not cover the variable's support");
          return;
        }
        for (size_t i = 0; i < n.branch_values.size(); ++i) {
          if (px.ProbOf(n.branch_values[i]) <= 0.0) {
            Error("mutex branch for zero-probability value");
            return;
          }
          // The substituted variable must not occur below the branch.
          const std::vector<VarId>& cv = VarsBelow(n.children[i]);
          if (std::binary_search(cv.begin(), cv.end(), n.var)) {
            Error("mutex variable still occurs in a branch");
            return;
          }
        }
        break;
      }
    }
    for (DTree::NodeId c : n.children) Visit(c);
  }

  const DTree& tree_;
  const VariableTable& variables_;
  ValidationResult result_;
  std::unordered_map<DTree::NodeId, std::vector<VarId>> vars_;
  std::set<DTree::NodeId> visited_;
};

}  // namespace

ValidationResult ValidateDTree(const DTree& tree,
                               const VariableTable& variables) {
  Validator validator(tree, variables);
  return validator.Run();
}

}  // namespace pvcdb
