// Bottom-up probability computation on d-trees (Theorem 2).
//
// Given the probability distributions of a d-tree's leaves (P_x for
// variable leaves, point masses for constants), the distribution of every
// inner node follows from Eqs. (4)-(9) by convolution ((+), (.), (x),
// [theta] nodes) and from Eq. (10) by weighted mixture (mutex nodes). The
// distribution of the d-tree is the distribution of its root and is
// computed in one bottom-up pass, each shared node once.
//
// The pass is an iterative explicit-stack kernel over (node, clamp bound)
// subproblems with a dense node-indexed memo -- no recursion depth limit
// on deep d-trees and no hashing per node. With num_threads > 1 the pass
// goes *intra-tree* parallel: the subproblem DAG is enumerated and
// coarsened into medium-grained subtree tasks, a topological dependency
// order feeds per-worker work-stealing deques over the shared ThreadPool,
// and workers exchange pure subtree distributions through a lock-striped
// shared memo. Every memo entry is the exact distribution of its
// subproblem and each node's reduction runs left-to-right exactly as in
// the serial pass, so the parallel result is bit-identical to serial for
// every thread count.
//
// For comparisons of bounded SUM/COUNT aggregates against a constant c,
// partial distributions are clamped at c+1 ("overflow" bucket): every value
// above c compares identically against c, so the clamp preserves the
// comparison's distribution while keeping supports of size O(c) -- this is
// what makes m-bounded SUM evaluation polynomial (Proposition 3).

#ifndef PVCDB_DTREE_PROBABILITY_H_
#define PVCDB_DTREE_PROBABILITY_H_

#include <cstdint>
#include <map>
#include <optional>

#include "src/algebra/semiring.h"
#include "src/dtree/dtree.h"
#include "src/prob/distribution.h"
#include "src/prob/variable.h"

namespace pvcdb {

/// Knobs of the probability computation.
struct ProbabilityOptions {
  /// Enables the c+1 overflow clamp for SUM/COUNT comparisons.
  bool enable_sum_clamping = true;
  /// Intra-d-tree parallelism: fans coarsened subtree tasks of one d-tree
  /// across up to this many threads via work-stealing deques and a
  /// lock-striped shared memo; 0 (default) and 1 mean serial, negative
  /// means all hardware threads. Bit-identical to serial for every value
  /// (see the file comment). Engine facades plumb
  /// EvalOptions::intra_tree_threads into this knob.
  int num_threads = 0;
};

/// Computes the probability distribution of a compiled d-tree.
Distribution ComputeDistribution(const DTree& tree,
                                 const VariableTable& variables,
                                 const Semiring& semiring,
                                 ProbabilityOptions options =
                                     ProbabilityOptions());

/// Probability that a semiring-sorted d-tree evaluates to a non-zero
/// (present / true) value: P[Phi != 0_S].
double ProbabilityNonZero(const DTree& tree, const VariableTable& variables,
                          const Semiring& semiring,
                          ProbabilityOptions options = ProbabilityOptions());

}  // namespace pvcdb

#endif  // PVCDB_DTREE_PROBABILITY_H_
