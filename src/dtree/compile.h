// Compilation of semiring / semimodule expressions into d-trees
// (Algorithm 1).
//
// The compiler repeatedly applies six decomposition rules, in order:
//   0. ground expressions become constant leaves;
//   1. a sum whose summands split into variable-disjoint groups becomes an
//      independent-sum node (+) -- groups are the connected components of
//      the summands' variable co-occurrence graph;
//   2. a product whose factors split into variable-disjoint groups becomes
//      an independent-product node (.); for single-component sums, read-once
//      common factors are extracted first (e.g. x*y1 + x*y2 = x*(y1 + y2)),
//      which factorises the read-once expressions arising from hierarchical
//      queries (cf. Example 14);
//   3. a tensor with independent sides becomes an (x) node;
//   4. a comparison with independent sides becomes a [theta] node (pruning
//      rules are applied first);
//   5. otherwise the expression is Shannon-expanded on one variable
//      (a |_|_x mutex node, Eq. 10); the default heuristic picks the
//      variable with the most occurrences, as in the paper.
//
// The engine is an iterative explicit-stack kernel: decomposition frames
// carry lazily materialised child subproblems (component regroupings and
// Shannon branches are built exactly when compilation reaches them, so the
// pool grows in the same order as the recursive formulation), the memo is a
// dense ExprId-indexed vector, and the per-expansion scratch (connected
// components, occurrence counting) is epoch-stamped instead of hashed --
// no recursion depth limit and no per-node allocation on the hot path.

#ifndef PVCDB_DTREE_COMPILE_H_
#define PVCDB_DTREE_COMPILE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/dtree/dtree.h"
#include "src/expr/expr.h"
#include "src/prob/variable.h"
#include "src/util/rng.h"

namespace pvcdb {

/// How the Shannon-expansion variable is chosen (rule 5). The paper uses
/// most-occurrences; the alternatives exist for the ablation benchmarks.
enum class VarChoiceHeuristic : uint8_t {
  kMostOccurrences,
  kFirst,
  kRandom,
};

/// Knobs of the compiler; the defaults reproduce the paper's configuration.
struct CompileOptions {
  /// Enables decomposition rules 1-4 (disabling leaves only Shannon
  /// expansion; exponential, for ablation only).
  bool enable_independence = true;
  /// Enables read-once common-factor extraction inside single-component
  /// sums (rule 2's factorisation step).
  bool enable_factorization = true;
  /// Enables the conditional-expression pruning rules.
  bool enable_pruning = true;
  VarChoiceHeuristic heuristic = VarChoiceHeuristic::kMostOccurrences;
  /// Hard cap on the number of emitted d-tree nodes; exceeding it throws
  /// CheckError (compilation can be exponential in the worst case).
  size_t max_nodes = 10'000'000;
  uint64_t random_seed = 42;  ///< For VarChoiceHeuristic::kRandom.
};

/// Statistics of one compilation.
struct CompileStats {
  size_t mutex_expansions = 0;    ///< Number of Shannon expansions.
  size_t independence_splits = 0; ///< Rules 1-3 applications.
  size_t factorizations = 0;      ///< Common-factor extractions.
  size_t prunings = 0;            ///< Comparisons simplified by pruning.
};

/// Compiles expressions of one pool into d-trees (Algorithm 1).
class DTreeCompiler {
 public:
  /// Both `pool` and `variables` must outlive the compiler. The pool is
  /// mutated: decomposition materialises subexpressions.
  DTreeCompiler(ExprPool* pool, const VariableTable* variables,
                CompileOptions options = CompileOptions());

  /// Compiles `e`; Proposition 4 guarantees the result represents the same
  /// probability distribution. Throws CheckError when the node budget is
  /// exceeded.
  DTree Compile(ExprId e);

  const CompileStats& stats() const { return stats_; }

 private:
  /// Sentinel for "not yet compiled" in the dense memo.
  static constexpr DTree::NodeId kNoNode = static_cast<DTree::NodeId>(-1);

  /// One child subproblem of a decomposition frame. kCombine and kBranch
  /// children are materialised (regrouped / substituted) only when
  /// compilation reaches them, preserving the recursive formulation's pool
  /// growth order exactly.
  struct PendingChild {
    enum class Kind : uint8_t {
      kExpr,     ///< An existing expression id.
      kCombine,  ///< Regroup members_[begin, begin+count) under the parent op.
      kBranch,   ///< Substitute(parent expr, frame var, branch_value).
    };
    Kind kind = Kind::kExpr;
    ExprId expr = kInvalidExpr;  ///< Input (kExpr) or resolved id.
    bool resolved = false;
    uint32_t members_begin = 0;  ///< kCombine: range in the members arena.
    uint32_t members_count = 0;
    int64_t branch_value = 0;  ///< kBranch: substituted semiring value.
  };

  /// One decomposition in flight: the node under construction plus its
  /// pending child subproblems (a range in the shared pending_ arena, which
  /// grows and shrinks stack-like with the frame stack).
  struct Frame {
    ExprId expr = kInvalidExpr;
    DTreeNodeKind kind = DTreeNodeKind::kOplus;
    ExprSort sort = ExprSort::kSemiring;
    AggKind agg = AggKind::kSum;
    CmpOp cmp = CmpOp::kEq;
    VarId var = 0;
    bool redirect = false;      ///< Result is the sole child's node id.
    ExprKind combine_kind = ExprKind::kAddS;  ///< Op of kCombine children.
    uint32_t next = 0;
    uint32_t pending_begin = 0;
    uint32_t pending_count = 0;
    uint32_t members_base = 0;
  };

  /// Classifies `e` (rules 0-5): settles leaves immediately, pushes a
  /// decomposition frame otherwise.
  void Visit(ExprId e, DTree* out);
  void PushRedirect(ExprId e, ExprId target);
  void PushShannon(ExprId e, const ExprNode& n);
  void ResolveChild(const Frame& f, PendingChild* pc);

  DTree::NodeId MemoLookup(ExprId e) const {
    return e < memo_.size() ? memo_[e] : kNoNode;
  }
  void MemoStore(ExprId e, DTree::NodeId id) {
    if (e >= memo_.size()) memo_.resize(pool_->NumNodes(), kNoNode);
    memo_[e] = id;
  }

  VarId ChooseVariable(ExprId e);

  /// Path-weighted occurrence counting over the DAG below `e` into the
  /// epoch-stamped var_occ_ scratch (read back via OccurrencesOf).
  void CountOccurrences(ExprId e);
  double OccurrencesOf(VarId v) const;

  /// Groups `items` into connected components of shared variables; returns
  /// one vector of item indices per component.
  std::vector<std::vector<size_t>> Components(Span<ExprId> items);

  /// Read-once common-factor extraction for single-component sums (kAddS)
  /// and monoid sums of tensors (kAddM); nullopt when nothing factors.
  std::optional<ExprId> TryFactorSum(const ExprNode& n);
  std::optional<ExprId> TryFactorTensorSum(const ExprNode& n);

  ExprPool* pool_;
  const VariableTable* variables_;
  CompileOptions options_;
  CompileStats stats_;
  Rng rng_;

  /// Dense ExprId -> d-tree node memo (kNoNode when uncompiled).
  std::vector<DTree::NodeId> memo_;

  // Frame stack and its side arenas.
  std::vector<Frame> frames_;
  std::vector<PendingChild> pending_;
  std::vector<ExprId> members_;
  std::vector<DTree::NodeId> child_ids_;  // Scratch for AddNode specs.
  std::vector<int64_t> branch_scratch_;

  // Epoch-stamped scratch: connected components (per variable) and
  // occurrence counting (per node and per variable).
  std::vector<uint32_t> var_stamp_;
  std::vector<uint32_t> var_owner_;
  uint32_t var_epoch_ = 0;
  std::vector<size_t> uf_parent_;
  std::vector<uint32_t> comp_of_;

  std::vector<uint32_t> node_stamp_;
  std::vector<uint8_t> node_state_;
  std::vector<double> node_paths_;
  uint32_t node_epoch_ = 0;
  std::vector<ExprId> order_;
  std::vector<ExprId> dfs_stack_;

  std::vector<uint32_t> occ_stamp_;
  std::vector<double> occ_count_;
  uint32_t occ_epoch_ = 0;
};

/// Convenience one-shot compilation.
DTree CompileToDTree(ExprPool* pool, const VariableTable* variables, ExprId e,
                     CompileOptions options = CompileOptions());

/// Compiles each of `exprs` (annotations of independent result tuples, or
/// any other independent subproblems) into its own d-tree, fanning items
/// across up to `num_threads` threads (0 = serial, the ParallelFor
/// convention). Every item -- on the serial path too -- is first cloned
/// into a task-private pool, so `pool` is only read and the produced
/// d-trees and downstream probabilities are bit-identical for every thread
/// count. D-trees reference only VarIds, so they remain valid against
/// `variables` after their private pools are gone.
std::vector<DTree> CompileBatch(const ExprPool& pool,
                                const VariableTable* variables,
                                const std::vector<ExprId>& exprs,
                                CompileOptions options = CompileOptions(),
                                int num_threads = 0);

}  // namespace pvcdb

#endif  // PVCDB_DTREE_COMPILE_H_
