// Compilation of semiring / semimodule expressions into d-trees
// (Algorithm 1).
//
// The compiler repeatedly applies six decomposition rules, in order:
//   0. ground expressions become constant leaves;
//   1. a sum whose summands split into variable-disjoint groups becomes an
//      independent-sum node (+) -- groups are the connected components of
//      the summands' variable co-occurrence graph;
//   2. a product whose factors split into variable-disjoint groups becomes
//      an independent-product node (.); for single-component sums, read-once
//      common factors are extracted first (e.g. x*y1 + x*y2 = x*(y1 + y2)),
//      which factorises the read-once expressions arising from hierarchical
//      queries (cf. Example 14);
//   3. a tensor with independent sides becomes an (x) node;
//   4. a comparison with independent sides becomes a [theta] node (pruning
//      rules are applied first);
//   5. otherwise the expression is Shannon-expanded on one variable
//      (a |_|_x mutex node, Eq. 10); the default heuristic picks the
//      variable with the most occurrences, as in the paper.

#ifndef PVCDB_DTREE_COMPILE_H_
#define PVCDB_DTREE_COMPILE_H_

#include <cstdint>
#include <unordered_map>

#include "src/dtree/dtree.h"
#include "src/expr/expr.h"
#include "src/prob/variable.h"
#include "src/util/rng.h"

namespace pvcdb {

/// How the Shannon-expansion variable is chosen (rule 5). The paper uses
/// most-occurrences; the alternatives exist for the ablation benchmarks.
enum class VarChoiceHeuristic : uint8_t {
  kMostOccurrences,
  kFirst,
  kRandom,
};

/// Knobs of the compiler; the defaults reproduce the paper's configuration.
struct CompileOptions {
  /// Enables decomposition rules 1-4 (disabling leaves only Shannon
  /// expansion; exponential, for ablation only).
  bool enable_independence = true;
  /// Enables read-once common-factor extraction inside single-component
  /// sums (rule 2's factorisation step).
  bool enable_factorization = true;
  /// Enables the conditional-expression pruning rules.
  bool enable_pruning = true;
  VarChoiceHeuristic heuristic = VarChoiceHeuristic::kMostOccurrences;
  /// Hard cap on the number of emitted d-tree nodes; exceeding it throws
  /// CheckError (compilation can be exponential in the worst case).
  size_t max_nodes = 10'000'000;
  uint64_t random_seed = 42;  ///< For VarChoiceHeuristic::kRandom.
};

/// Statistics of one compilation.
struct CompileStats {
  size_t mutex_expansions = 0;    ///< Number of Shannon expansions.
  size_t independence_splits = 0; ///< Rules 1-3 applications.
  size_t factorizations = 0;      ///< Common-factor extractions.
  size_t prunings = 0;            ///< Comparisons simplified by pruning.
};

/// Compiles expressions of one pool into d-trees (Algorithm 1).
class DTreeCompiler {
 public:
  /// Both `pool` and `variables` must outlive the compiler. The pool is
  /// mutated: decomposition materialises subexpressions.
  DTreeCompiler(ExprPool* pool, const VariableTable* variables,
                CompileOptions options = CompileOptions());

  /// Compiles `e`; Proposition 4 guarantees the result represents the same
  /// probability distribution. Throws CheckError when the node budget is
  /// exceeded.
  DTree Compile(ExprId e);

  const CompileStats& stats() const { return stats_; }

 private:
  DTree::NodeId CompileRec(ExprId e, DTree* out);
  DTree::NodeId CompileShannon(ExprId e, DTree* out);
  VarId ChooseVariable(ExprId e);

  /// Groups `items` into connected components of shared variables; returns
  /// one vector of item indices per component.
  std::vector<std::vector<size_t>> Components(const std::vector<ExprId>& items);

  ExprPool* pool_;
  const VariableTable* variables_;
  CompileOptions options_;
  CompileStats stats_;
  Rng rng_;
  std::unordered_map<ExprId, DTree::NodeId> memo_;
};

/// Convenience one-shot compilation.
DTree CompileToDTree(ExprPool* pool, const VariableTable* variables, ExprId e,
                     CompileOptions options = CompileOptions());

/// Compiles each of `exprs` (annotations of independent result tuples, or
/// any other independent subproblems) into its own d-tree, fanning items
/// across up to `num_threads` threads (0 = serial, the ParallelFor
/// convention). Every item -- on the serial path too -- is first cloned
/// into a task-private pool, so `pool` is only read and the produced
/// d-trees and downstream probabilities are bit-identical for every thread
/// count. D-trees reference only VarIds, so they remain valid against
/// `variables` after their private pools are gone.
std::vector<DTree> CompileBatch(const ExprPool& pool,
                                const VariableTable* variables,
                                const std::vector<ExprId>& exprs,
                                CompileOptions options = CompileOptions(),
                                int num_threads = 0);

}  // namespace pvcdb

#endif  // PVCDB_DTREE_COMPILE_H_
