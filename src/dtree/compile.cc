#include "src/dtree/compile.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "src/dtree/prune.h"
#include "src/util/check.h"
#include "src/util/parallel.h"

namespace pvcdb {

namespace {

// Union-find over item indices, used for connected-component grouping.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = i;
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

// The multiset of semiring factors of a child of a sum: the factor list of
// a product node, or the node itself.
std::vector<ExprId> FactorsOf(const ExprPool& pool, ExprId e) {
  const ExprNode& n = pool.node(e);
  if (n.kind == ExprKind::kMulS) return n.children;  // Already sorted.
  return {e};
}

// Multiset difference a \ b over sorted ranges.
std::vector<ExprId> MultisetMinus(const std::vector<ExprId>& a,
                                  const std::vector<ExprId>& b) {
  std::vector<ExprId> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

}  // namespace

DTreeCompiler::DTreeCompiler(ExprPool* pool, const VariableTable* variables,
                             CompileOptions options)
    : pool_(pool),
      variables_(variables),
      options_(options),
      rng_(options.random_seed) {
  PVC_CHECK(pool != nullptr && variables != nullptr);
}

DTree CompileToDTree(ExprPool* pool, const VariableTable* variables, ExprId e,
                     CompileOptions options) {
  DTreeCompiler compiler(pool, variables, options);
  return compiler.Compile(e);
}

std::vector<DTree> CompileBatch(const ExprPool& pool,
                                const VariableTable* variables,
                                const std::vector<ExprId>& exprs,
                                CompileOptions options, int num_threads) {
  std::vector<DTree> out(exprs.size());
  ParallelFor(num_threads, exprs.size(), [&](size_t i) {
    ExprPool local(pool.semiring().kind());
    ExprId e = pool.CloneInto(&local, exprs[i]);
    out[i] = CompileToDTree(&local, variables, e, options);
  });
  return out;
}

DTree DTreeCompiler::Compile(ExprId e) {
  memo_.clear();
  DTree out;
  DTree::NodeId root = CompileRec(e, &out);
  out.set_root(root);
  return out;
}

std::vector<std::vector<size_t>> DTreeCompiler::Components(
    const std::vector<ExprId>& items) {
  UnionFind uf(items.size());
  std::unordered_map<VarId, size_t> first_owner;
  for (size_t i = 0; i < items.size(); ++i) {
    for (VarId v : pool_->VarsOf(items[i])) {
      auto [it, inserted] = first_owner.emplace(v, i);
      if (!inserted) uf.Union(i, it->second);
    }
  }
  std::unordered_map<size_t, size_t> root_to_component;
  std::vector<std::vector<size_t>> components;
  for (size_t i = 0; i < items.size(); ++i) {
    size_t root = uf.Find(i);
    auto [it, inserted] = root_to_component.emplace(root, components.size());
    if (inserted) components.emplace_back();
    components[it->second].push_back(i);
  }
  return components;
}

VarId DTreeCompiler::ChooseVariable(ExprId e) {
  const std::vector<VarId>& vars = pool_->VarsOf(e);
  PVC_CHECK(!vars.empty());
  switch (options_.heuristic) {
    case VarChoiceHeuristic::kFirst:
      return vars.front();
    case VarChoiceHeuristic::kRandom:
      return vars[static_cast<size_t>(
          rng_.UniformInt(0, static_cast<int64_t>(vars.size()) - 1))];
    case VarChoiceHeuristic::kMostOccurrences: {
      std::unordered_map<VarId, double> counts;
      pool_->CountVarOccurrences(e, &counts);
      VarId best = vars.front();
      double best_count = -1.0;
      // Deterministic tie-break on the smaller id: iterate the sorted list.
      for (VarId v : vars) {
        double c = counts[v];
        if (c > best_count) {
          best = v;
          best_count = c;
        }
      }
      return best;
    }
  }
  PVC_FAIL("unknown variable-choice heuristic");
}

DTree::NodeId DTreeCompiler::CompileShannon(ExprId e, DTree* out) {
  VarId x = ChooseVariable(e);
  ++stats_.mutex_expansions;
  const Distribution& px = variables_->DistributionOf(x);
  DTreeNode node;
  node.kind = DTreeNodeKind::kMutex;
  node.var = x;
  const ExprNode& en = pool_->node(e);
  node.sort = en.sort;
  node.agg = en.agg;
  for (const auto& [s, p] : px.entries()) {
    ExprId branch = pool_->Substitute(e, x, s);
    node.children.push_back(CompileRec(branch, out));
    node.branch_values.push_back(s);
  }
  return out->AddNode(std::move(node));
}

DTree::NodeId DTreeCompiler::CompileRec(ExprId e, DTree* out) {
  PVC_CHECK_MSG(out->size() < options_.max_nodes,
                "d-tree node budget exceeded (" << options_.max_nodes << ")");
  auto it = memo_.find(e);
  if (it != memo_.end()) return it->second;

  // Pruning (rule 4 preamble): simplify conditional expressions first.
  if (options_.enable_pruning &&
      pool_->node(e).kind == ExprKind::kCmp) {
    ExprId pruned = PruneComparison(*pool_, e);
    if (pruned != e) {
      ++stats_.prunings;
      DTree::NodeId id = CompileRec(pruned, out);
      memo_.emplace(e, id);
      return id;
    }
  }

  const ExprNode n = pool_->node(e);  // Copy: the pool grows below.
  DTree::NodeId result = 0;
  switch (n.kind) {
    case ExprKind::kVar: {
      DTreeNode leaf;
      leaf.kind = DTreeNodeKind::kLeafVar;
      leaf.sort = ExprSort::kSemiring;
      leaf.var = n.var();
      result = out->AddNode(std::move(leaf));
      break;
    }
    case ExprKind::kConstS:
    case ExprKind::kConstM: {
      DTreeNode leaf;
      leaf.kind = DTreeNodeKind::kLeafConst;
      leaf.sort = n.sort;
      leaf.agg = n.agg;
      leaf.value = n.value;
      result = out->AddNode(std::move(leaf));
      break;
    }
    case ExprKind::kAddS:
    case ExprKind::kAddM: {
      if (!options_.enable_independence) {
        result = CompileShannon(e, out);
        break;
      }
      std::vector<std::vector<size_t>> components = Components(n.children);
      if (components.size() > 1) {
        // Rule 1: independent sum.
        ++stats_.independence_splits;
        DTreeNode sum;
        sum.kind = DTreeNodeKind::kOplus;
        sum.sort = n.sort;
        sum.agg = n.agg;
        for (const std::vector<size_t>& comp : components) {
          std::vector<ExprId> members;
          members.reserve(comp.size());
          for (size_t idx : comp) members.push_back(n.children[idx]);
          ExprId sub = n.kind == ExprKind::kAddS
                           ? pool_->AddS(std::move(members))
                           : pool_->AddM(n.agg, std::move(members));
          sum.children.push_back(CompileRec(sub, out));
        }
        result = out->AddNode(std::move(sum));
        break;
      }
      // Single component: attempt read-once common-factor extraction.
      if (options_.enable_factorization) {
        std::optional<ExprId> factored =
            n.kind == ExprKind::kAddS
                ? [&]() -> std::optional<ExprId> {
                    // Common semiring factor: x*a + x*b = x*(a + b).
                    std::vector<ExprId> common =
                        FactorsOf(*pool_, n.children.front());
                    for (size_t i = 1; i < n.children.size() && !common.empty();
                         ++i) {
                      std::vector<ExprId> fi =
                          FactorsOf(*pool_, n.children[i]);
                      std::vector<ExprId> inter;
                      std::set_intersection(common.begin(), common.end(),
                                            fi.begin(), fi.end(),
                                            std::back_inserter(inter));
                      common = std::move(inter);
                    }
                    // Never factor out ground factors; constants are already
                    // canonicalised by the smart constructors.
                    common.erase(
                        std::remove_if(common.begin(), common.end(),
                                       [&](ExprId f) {
                                         return pool_->node(f).IsGround();
                                       }),
                        common.end());
                    if (common.empty()) return std::nullopt;
                    std::vector<ExprId> residuals;
                    residuals.reserve(n.children.size());
                    for (ExprId c : n.children) {
                      std::vector<ExprId> rest =
                          MultisetMinus(FactorsOf(*pool_, c), common);
                      residuals.push_back(pool_->MulS(std::move(rest)));
                    }
                    return pool_->MulS(pool_->MulS(std::move(common)),
                                       pool_->AddS(std::move(residuals)));
                  }()
                : [&]() -> std::optional<ExprId> {
                    // Common semiring factor across tensor terms:
                    // (x*a) (x) m1 +op (x*b) (x) m2
                    //   = x (x) (a (x) m1 +op b (x) m2).
                    std::vector<ExprId> common;
                    bool first = true;
                    for (ExprId c : n.children) {
                      const ExprNode& cn = pool_->node(c);
                      if (cn.kind != ExprKind::kTensor) return std::nullopt;
                      std::vector<ExprId> fi =
                          FactorsOf(*pool_, cn.children[0]);
                      if (first) {
                        common = std::move(fi);
                        first = false;
                      } else {
                        std::vector<ExprId> inter;
                        std::set_intersection(common.begin(), common.end(),
                                              fi.begin(), fi.end(),
                                              std::back_inserter(inter));
                        common = std::move(inter);
                      }
                      if (common.empty()) return std::nullopt;
                    }
                    common.erase(
                        std::remove_if(common.begin(), common.end(),
                                       [&](ExprId f) {
                                         return pool_->node(f).IsGround();
                                       }),
                        common.end());
                    if (common.empty()) return std::nullopt;
                    std::vector<ExprId> residuals;
                    residuals.reserve(n.children.size());
                    for (ExprId c : n.children) {
                      const ExprNode& cn = pool_->node(c);
                      std::vector<ExprId> rest =
                          MultisetMinus(FactorsOf(*pool_, cn.children[0]),
                                        common);
                      residuals.push_back(pool_->Tensor(
                          pool_->MulS(std::move(rest)), cn.children[1]));
                    }
                    return pool_->Tensor(
                        pool_->MulS(std::move(common)),
                        pool_->AddM(n.agg, std::move(residuals)));
                  }();
        if (factored.has_value() && *factored != e) {
          ++stats_.factorizations;
          result = CompileRec(*factored, out);
          break;
        }
      }
      result = CompileShannon(e, out);
      break;
    }
    case ExprKind::kMulS: {
      if (!options_.enable_independence) {
        result = CompileShannon(e, out);
        break;
      }
      std::vector<std::vector<size_t>> components = Components(n.children);
      if (components.size() > 1) {
        // Rule 2: independent product.
        ++stats_.independence_splits;
        DTreeNode prod;
        prod.kind = DTreeNodeKind::kOdot;
        prod.sort = ExprSort::kSemiring;
        for (const std::vector<size_t>& comp : components) {
          std::vector<ExprId> members;
          members.reserve(comp.size());
          for (size_t idx : comp) members.push_back(n.children[idx]);
          prod.children.push_back(
              CompileRec(pool_->MulS(std::move(members)), out));
        }
        result = out->AddNode(std::move(prod));
        break;
      }
      result = CompileShannon(e, out);
      break;
    }
    case ExprKind::kTensor: {
      const std::vector<VarId>& sv = pool_->VarsOf(n.children[0]);
      const std::vector<VarId>& mv = pool_->VarsOf(n.children[1]);
      std::vector<VarId> shared;
      std::set_intersection(sv.begin(), sv.end(), mv.begin(), mv.end(),
                            std::back_inserter(shared));
      if (options_.enable_independence && shared.empty()) {
        // Rule 3: independent tensor.
        ++stats_.independence_splits;
        DTreeNode tensor;
        tensor.kind = DTreeNodeKind::kOtimes;
        tensor.sort = ExprSort::kMonoid;
        tensor.agg = n.agg;
        tensor.children = {CompileRec(n.children[0], out),
                           CompileRec(n.children[1], out)};
        result = out->AddNode(std::move(tensor));
        break;
      }
      result = CompileShannon(e, out);
      break;
    }
    case ExprKind::kCmp: {
      const std::vector<VarId>& lv = pool_->VarsOf(n.children[0]);
      const std::vector<VarId>& rv = pool_->VarsOf(n.children[1]);
      std::vector<VarId> shared;
      std::set_intersection(lv.begin(), lv.end(), rv.begin(), rv.end(),
                            std::back_inserter(shared));
      if (options_.enable_independence && shared.empty()) {
        // Rule 4: independent comparison.
        ++stats_.independence_splits;
        DTreeNode cmp;
        cmp.kind = DTreeNodeKind::kCmp;
        cmp.sort = ExprSort::kSemiring;
        cmp.cmp = n.cmp;
        cmp.children = {CompileRec(n.children[0], out),
                        CompileRec(n.children[1], out)};
        result = out->AddNode(std::move(cmp));
        break;
      }
      result = CompileShannon(e, out);
      break;
    }
  }
  memo_.emplace(e, result);
  return result;
}

}  // namespace pvcdb
