#include "src/dtree/compile.h"

#include <algorithm>
#include <utility>

#include "src/dtree/prune.h"
#include "src/util/check.h"
#include "src/util/parallel.h"

namespace pvcdb {

namespace {

// The multiset of semiring factors of a child of a sum: the factor list of
// a product node, or the node itself.
std::vector<ExprId> FactorsOf(const ExprPool& pool, ExprId e) {
  const ExprNode& n = pool.node(e);
  if (n.kind == ExprKind::kMulS) {
    Span<ExprId> c = n.children();  // Already sorted.
    return {c.begin(), c.end()};
  }
  return {e};
}

// Multiset difference a \ b over sorted ranges.
std::vector<ExprId> MultisetMinus(const std::vector<ExprId>& a,
                                  const std::vector<ExprId>& b) {
  std::vector<ExprId> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

// Whether two sorted variable sets are disjoint.
bool SortedDisjoint(Span<VarId> a, Span<VarId> b) {
  const VarId* i = a.begin();
  const VarId* j = b.begin();
  while (i != a.end() && j != b.end()) {
    if (*i < *j) {
      ++i;
    } else if (*j < *i) {
      ++j;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

DTreeCompiler::DTreeCompiler(ExprPool* pool, const VariableTable* variables,
                             CompileOptions options)
    : pool_(pool),
      variables_(variables),
      options_(options),
      rng_(options.random_seed) {
  PVC_CHECK(pool != nullptr && variables != nullptr);
}

DTree CompileToDTree(ExprPool* pool, const VariableTable* variables, ExprId e,
                     CompileOptions options) {
  DTreeCompiler compiler(pool, variables, options);
  return compiler.Compile(e);
}

std::vector<DTree> CompileBatch(const ExprPool& pool,
                                const VariableTable* variables,
                                const std::vector<ExprId>& exprs,
                                CompileOptions options, int num_threads) {
  std::vector<DTree> out(exprs.size());
  ParallelFor(num_threads, exprs.size(), [&](size_t i) {
    ExprPool local(pool.semiring().kind());
    ExprId e = pool.CloneInto(&local, exprs[i]);
    out[i] = CompileToDTree(&local, variables, e, options);
  });
  return out;
}

DTree DTreeCompiler::Compile(ExprId e) {
  memo_.assign(pool_->NumNodes(), kNoNode);
  frames_.clear();
  pending_.clear();
  members_.clear();
  DTree out;
  Visit(e, &out);
  // Drive the frame stack: each iteration either materialises and descends
  // into the top frame's next child subproblem, or -- when every child is
  // compiled -- emits the frame's d-tree node. The emission order matches
  // the recursive formulation's postorder exactly.
  while (!frames_.empty()) {
    Frame& f = frames_.back();
    if (f.next < f.pending_count) {
      PendingChild& pc = pending_[f.pending_begin + f.next];
      if (!pc.resolved) {
        ResolveChild(f, &pc);
        pc.resolved = true;
      }
      if (MemoLookup(pc.expr) != kNoNode) {
        ++f.next;
        continue;
      }
      Visit(pc.expr, &out);
      continue;
    }
    DTree::NodeId result;
    if (f.redirect) {
      result = MemoLookup(pending_[f.pending_begin].expr);
    } else {
      child_ids_.clear();
      branch_scratch_.clear();
      for (uint32_t i = 0; i < f.pending_count; ++i) {
        const PendingChild& pc = pending_[f.pending_begin + i];
        child_ids_.push_back(MemoLookup(pc.expr));
        if (f.kind == DTreeNodeKind::kMutex) {
          branch_scratch_.push_back(pc.branch_value);
        }
      }
      result = out.AddNode(f.kind, f.sort, f.agg, f.cmp, f.var, 0,
                           {child_ids_.data(), child_ids_.size()},
                           {branch_scratch_.data(), branch_scratch_.size()});
    }
    MemoStore(f.expr, result);
    pending_.resize(f.pending_begin);
    members_.resize(f.members_base);
    frames_.pop_back();
  }
  out.set_root(MemoLookup(e));
  return out;
}

void DTreeCompiler::Visit(ExprId e, DTree* out) {
  PVC_CHECK_MSG(out->size() < options_.max_nodes,
                "d-tree node budget exceeded (" << options_.max_nodes << ")");
  if (MemoLookup(e) != kNoNode) return;

  // Pruning (rule 4 preamble): simplify conditional expressions first.
  if (options_.enable_pruning && pool_->node(e).kind == ExprKind::kCmp) {
    ExprId pruned = PruneComparison(*pool_, e);
    if (pruned != e) {
      ++stats_.prunings;
      PushRedirect(e, pruned);
      return;
    }
  }

  const ExprNode n = pool_->node(e);  // Copy: the pool grows below.
  switch (n.kind) {
    case ExprKind::kVar:
      MemoStore(e, out->AddNode(DTreeNodeKind::kLeafVar, ExprSort::kSemiring,
                                AggKind::kSum, CmpOp::kEq, n.var(), 0, {},
                                {}));
      return;
    case ExprKind::kConstS:
    case ExprKind::kConstM:
      MemoStore(e, out->AddNode(DTreeNodeKind::kLeafConst, n.sort, n.agg,
                                CmpOp::kEq, 0, n.value, {}, {}));
      return;
    case ExprKind::kAddS:
    case ExprKind::kAddM: {
      if (!options_.enable_independence) {
        PushShannon(e, n);
        return;
      }
      Span<ExprId> kids = n.children();
      std::vector<std::vector<size_t>> components = Components(kids);
      if (components.size() > 1) {
        // Rule 1: independent sum.
        ++stats_.independence_splits;
        Frame f;
        f.expr = e;
        f.kind = DTreeNodeKind::kOplus;
        f.sort = n.sort;
        f.agg = n.agg;
        f.combine_kind = n.kind;
        f.pending_begin = static_cast<uint32_t>(pending_.size());
        f.members_base = static_cast<uint32_t>(members_.size());
        for (const std::vector<size_t>& comp : components) {
          PendingChild pc;
          pc.kind = PendingChild::Kind::kCombine;
          pc.members_begin = static_cast<uint32_t>(members_.size());
          for (size_t idx : comp) members_.push_back(kids[idx]);
          pc.members_count = static_cast<uint32_t>(comp.size());
          pending_.push_back(pc);
        }
        f.pending_count = static_cast<uint32_t>(components.size());
        frames_.push_back(f);
        return;
      }
      // Single component: attempt read-once common-factor extraction.
      if (options_.enable_factorization) {
        std::optional<ExprId> factored = n.kind == ExprKind::kAddS
                                             ? TryFactorSum(n)
                                             : TryFactorTensorSum(n);
        if (factored.has_value() && *factored != e) {
          ++stats_.factorizations;
          PushRedirect(e, *factored);
          return;
        }
      }
      PushShannon(e, n);
      return;
    }
    case ExprKind::kMulS: {
      if (!options_.enable_independence) {
        PushShannon(e, n);
        return;
      }
      Span<ExprId> kids = n.children();
      std::vector<std::vector<size_t>> components = Components(kids);
      if (components.size() > 1) {
        // Rule 2: independent product.
        ++stats_.independence_splits;
        Frame f;
        f.expr = e;
        f.kind = DTreeNodeKind::kOdot;
        f.sort = ExprSort::kSemiring;
        f.combine_kind = ExprKind::kMulS;
        f.pending_begin = static_cast<uint32_t>(pending_.size());
        f.members_base = static_cast<uint32_t>(members_.size());
        for (const std::vector<size_t>& comp : components) {
          PendingChild pc;
          pc.kind = PendingChild::Kind::kCombine;
          pc.members_begin = static_cast<uint32_t>(members_.size());
          for (size_t idx : comp) members_.push_back(kids[idx]);
          pc.members_count = static_cast<uint32_t>(comp.size());
          pending_.push_back(pc);
        }
        f.pending_count = static_cast<uint32_t>(components.size());
        frames_.push_back(f);
        return;
      }
      PushShannon(e, n);
      return;
    }
    case ExprKind::kTensor: {
      if (options_.enable_independence &&
          SortedDisjoint(pool_->VarsOf(n.child(0)),
                         pool_->VarsOf(n.child(1)))) {
        // Rule 3: independent tensor.
        ++stats_.independence_splits;
        Frame f;
        f.expr = e;
        f.kind = DTreeNodeKind::kOtimes;
        f.sort = ExprSort::kMonoid;
        f.agg = n.agg;
        f.pending_begin = static_cast<uint32_t>(pending_.size());
        f.members_base = static_cast<uint32_t>(members_.size());
        for (int i = 0; i < 2; ++i) {
          PendingChild pc;
          pc.kind = PendingChild::Kind::kExpr;
          pc.expr = n.child(i);
          pc.resolved = true;
          pending_.push_back(pc);
        }
        f.pending_count = 2;
        frames_.push_back(f);
        return;
      }
      PushShannon(e, n);
      return;
    }
    case ExprKind::kCmp: {
      if (options_.enable_independence &&
          SortedDisjoint(pool_->VarsOf(n.child(0)),
                         pool_->VarsOf(n.child(1)))) {
        // Rule 4: independent comparison.
        ++stats_.independence_splits;
        Frame f;
        f.expr = e;
        f.kind = DTreeNodeKind::kCmp;
        f.sort = ExprSort::kSemiring;
        f.cmp = n.cmp;
        f.pending_begin = static_cast<uint32_t>(pending_.size());
        f.members_base = static_cast<uint32_t>(members_.size());
        for (int i = 0; i < 2; ++i) {
          PendingChild pc;
          pc.kind = PendingChild::Kind::kExpr;
          pc.expr = n.child(i);
          pc.resolved = true;
          pending_.push_back(pc);
        }
        f.pending_count = 2;
        frames_.push_back(f);
        return;
      }
      PushShannon(e, n);
      return;
    }
  }
  PVC_FAIL("unknown expression kind");
}

void DTreeCompiler::PushRedirect(ExprId e, ExprId target) {
  Frame f;
  f.expr = e;
  f.redirect = true;
  f.pending_begin = static_cast<uint32_t>(pending_.size());
  f.members_base = static_cast<uint32_t>(members_.size());
  PendingChild pc;
  pc.kind = PendingChild::Kind::kExpr;
  pc.expr = target;
  pc.resolved = true;
  pending_.push_back(pc);
  f.pending_count = 1;
  frames_.push_back(f);
}

void DTreeCompiler::PushShannon(ExprId e, const ExprNode& n) {
  VarId x = ChooseVariable(e);
  ++stats_.mutex_expansions;
  const Distribution& px = variables_->DistributionOf(x);
  Frame f;
  f.expr = e;
  f.kind = DTreeNodeKind::kMutex;
  f.sort = n.sort;
  f.agg = n.agg;
  f.var = x;
  f.pending_begin = static_cast<uint32_t>(pending_.size());
  f.members_base = static_cast<uint32_t>(members_.size());
  for (const auto& entry : px.entries()) {
    PendingChild pc;
    pc.kind = PendingChild::Kind::kBranch;
    pc.branch_value = entry.first;
    pending_.push_back(pc);
  }
  f.pending_count = static_cast<uint32_t>(px.size());
  frames_.push_back(f);
}

void DTreeCompiler::ResolveChild(const Frame& f, PendingChild* pc) {
  switch (pc->kind) {
    case PendingChild::Kind::kExpr:
      return;
    case PendingChild::Kind::kBranch:
      pc->expr = pool_->Substitute(f.expr, f.var, pc->branch_value);
      return;
    case PendingChild::Kind::kCombine: {
      const ExprId* m = members_.data() + pc->members_begin;
      switch (f.combine_kind) {
        case ExprKind::kAddS:
          pc->expr = pool_->AddSRange(m, pc->members_count);
          return;
        case ExprKind::kMulS:
          pc->expr = pool_->MulSRange(m, pc->members_count);
          return;
        case ExprKind::kAddM:
          pc->expr = pool_->AddMRange(f.agg, m, pc->members_count);
          return;
        default:
          PVC_FAIL("unexpected combine kind");
      }
    }
  }
  PVC_FAIL("unknown pending-child kind");
}

std::vector<std::vector<size_t>> DTreeCompiler::Components(
    Span<ExprId> items) {
  size_t n = items.size();
  uf_parent_.resize(n);
  for (size_t i = 0; i < n; ++i) uf_parent_[i] = i;
  auto find = [this](size_t x) {
    while (uf_parent_[x] != x) {
      uf_parent_[x] = uf_parent_[uf_parent_[x]];
      x = uf_parent_[x];
    }
    return x;
  };
  if (++var_epoch_ == 0) {
    std::fill(var_stamp_.begin(), var_stamp_.end(), 0u);
    var_epoch_ = 1;
  }
  for (size_t i = 0; i < n; ++i) {
    for (VarId v : pool_->VarsOf(items[i])) {
      if (v >= var_stamp_.size()) {
        var_stamp_.resize(v + 1, 0);
        var_owner_.resize(v + 1, 0);
      }
      if (var_stamp_[v] != var_epoch_) {
        var_stamp_[v] = var_epoch_;
        var_owner_[v] = static_cast<uint32_t>(i);
      } else {
        uf_parent_[find(i)] = find(var_owner_[v]);
      }
    }
  }
  comp_of_.assign(n, static_cast<uint32_t>(-1));
  std::vector<std::vector<size_t>> components;
  for (size_t i = 0; i < n; ++i) {
    size_t root = find(i);
    if (comp_of_[root] == static_cast<uint32_t>(-1)) {
      comp_of_[root] = static_cast<uint32_t>(components.size());
      components.emplace_back();
    }
    components[comp_of_[root]].push_back(i);
  }
  return components;
}

void DTreeCompiler::CountOccurrences(ExprId e) {
  size_t n = pool_->NumNodes();
  if (node_stamp_.size() < n) {
    node_stamp_.resize(n, 0);
    node_state_.resize(n, 0);
    node_paths_.resize(n, 0.0);
  }
  if (++node_epoch_ == 0) {
    std::fill(node_stamp_.begin(), node_stamp_.end(), 0u);
    node_epoch_ = 1;
  }
  if (++occ_epoch_ == 0) {
    std::fill(occ_stamp_.begin(), occ_stamp_.end(), 0u);
    occ_epoch_ = 1;
  }
  order_.clear();
  dfs_stack_.clear();
  dfs_stack_.push_back(e);
  while (!dfs_stack_.empty()) {
    ExprId id = dfs_stack_.back();
    uint8_t state = node_stamp_[id] == node_epoch_ ? node_state_[id] : 0;
    if (state == 2) {
      dfs_stack_.pop_back();
      continue;
    }
    if (state == 0) {
      node_stamp_[id] = node_epoch_;
      node_state_[id] = 1;
      node_paths_[id] = 0.0;
      for (ExprId c : pool_->node(id).children()) {
        if (node_stamp_[c] != node_epoch_) dfs_stack_.push_back(c);
      }
    } else {
      node_state_[id] = 2;
      order_.push_back(id);
      dfs_stack_.pop_back();
    }
  }
  // Parents first: distribute path counts down the DAG, accumulating the
  // per-variable occurrence totals. Path counts are integer-valued, so the
  // accumulation order cannot perturb them.
  node_paths_[e] = 1.0;
  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    ExprId id = *it;
    double p = node_paths_[id];
    const ExprNode& nd = pool_->node(id);
    if (nd.kind == ExprKind::kVar) {
      VarId v = nd.var();
      if (v >= occ_stamp_.size()) {
        occ_stamp_.resize(v + 1, 0);
        occ_count_.resize(v + 1, 0.0);
      }
      if (occ_stamp_[v] != occ_epoch_) {
        occ_stamp_[v] = occ_epoch_;
        occ_count_[v] = p;
      } else {
        occ_count_[v] += p;
      }
    }
    for (ExprId c : nd.children()) node_paths_[c] += p;
  }
}

double DTreeCompiler::OccurrencesOf(VarId v) const {
  return (v < occ_stamp_.size() && occ_stamp_[v] == occ_epoch_)
             ? occ_count_[v]
             : 0.0;
}

VarId DTreeCompiler::ChooseVariable(ExprId e) {
  Span<VarId> vars = pool_->VarsOf(e);
  PVC_CHECK(!vars.empty());
  switch (options_.heuristic) {
    case VarChoiceHeuristic::kFirst:
      return vars.front();
    case VarChoiceHeuristic::kRandom:
      return vars[static_cast<size_t>(
          rng_.UniformInt(0, static_cast<int64_t>(vars.size()) - 1))];
    case VarChoiceHeuristic::kMostOccurrences: {
      CountOccurrences(e);
      VarId best = vars.front();
      double best_count = -1.0;
      // Deterministic tie-break on the smaller id: iterate the sorted list.
      for (VarId v : vars) {
        double c = OccurrencesOf(v);
        if (c > best_count) {
          best = v;
          best_count = c;
        }
      }
      return best;
    }
  }
  PVC_FAIL("unknown variable-choice heuristic");
}

std::optional<ExprId> DTreeCompiler::TryFactorSum(const ExprNode& n) {
  // Common semiring factor: x*a + x*b = x*(a + b).
  Span<ExprId> kids = n.children();
  std::vector<ExprId> common = FactorsOf(*pool_, kids.front());
  for (size_t i = 1; i < kids.size() && !common.empty(); ++i) {
    std::vector<ExprId> fi = FactorsOf(*pool_, kids[i]);
    std::vector<ExprId> inter;
    std::set_intersection(common.begin(), common.end(), fi.begin(), fi.end(),
                          std::back_inserter(inter));
    common = std::move(inter);
  }
  // Never factor out ground factors; constants are already canonicalised
  // by the smart constructors.
  common.erase(std::remove_if(
                   common.begin(), common.end(),
                   [&](ExprId f) { return pool_->node(f).IsGround(); }),
               common.end());
  if (common.empty()) return std::nullopt;
  std::vector<ExprId> residuals;
  residuals.reserve(kids.size());
  for (ExprId c : kids) {
    std::vector<ExprId> rest = MultisetMinus(FactorsOf(*pool_, c), common);
    residuals.push_back(pool_->MulS(rest));
  }
  return pool_->MulS(pool_->MulS(common), pool_->AddS(residuals));
}

std::optional<ExprId> DTreeCompiler::TryFactorTensorSum(const ExprNode& n) {
  // Common semiring factor across tensor terms:
  // (x*a) (x) m1 +op (x*b) (x) m2 = x (x) (a (x) m1 +op b (x) m2).
  Span<ExprId> kids = n.children();
  std::vector<ExprId> common;
  bool first = true;
  for (ExprId c : kids) {
    const ExprNode& cn = pool_->node(c);
    if (cn.kind != ExprKind::kTensor) return std::nullopt;
    std::vector<ExprId> fi = FactorsOf(*pool_, cn.child(0));
    if (first) {
      common = std::move(fi);
      first = false;
    } else {
      std::vector<ExprId> inter;
      std::set_intersection(common.begin(), common.end(), fi.begin(),
                            fi.end(), std::back_inserter(inter));
      common = std::move(inter);
    }
    if (common.empty()) return std::nullopt;
  }
  common.erase(std::remove_if(
                   common.begin(), common.end(),
                   [&](ExprId f) { return pool_->node(f).IsGround(); }),
               common.end());
  if (common.empty()) return std::nullopt;
  std::vector<ExprId> residuals;
  residuals.reserve(kids.size());
  for (ExprId c : kids) {
    const ExprNode cn = pool_->node(c);  // Copy: interning below.
    std::vector<ExprId> rest =
        MultisetMinus(FactorsOf(*pool_, cn.child(0)), common);
    residuals.push_back(pool_->Tensor(pool_->MulS(rest), cn.child(1)));
  }
  return pool_->Tensor(pool_->MulS(common), pool_->AddM(n.agg, residuals));
}

}  // namespace pvcdb
