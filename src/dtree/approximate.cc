#include "src/dtree/approximate.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "src/dtree/prune.h"
#include "src/util/check.h"
#include "src/util/parallel.h"

namespace pvcdb {

namespace {

ProbabilityBounds Exact(double p) { return {p, p}; }

// Iterative interval-propagation kernel. Decomposition frames carry lazily
// materialised child subproblems (component regroupings and Shannon
// branches are built exactly when evaluation reaches them), so the budget
// is consumed -- and the pool grows -- in the same order as the recursive
// formulation; the memo is a dense ExprId-indexed vector.
class Approximator {
 public:
  Approximator(ExprPool* pool, const VariableTable& variables, size_t budget)
      : pool_(pool), variables_(variables), budget_(budget) {}

  ProbabilityBounds Bounds(ExprId e) {
    if (const ProbabilityBounds* hit = Find(e)) return *hit;
    PushOrSettle(e);
    while (!frames_.empty()) {
      Frame& f = frames_.back();
      if (f.next < f.pending_count) {
        PendingChild& pc = pending_[f.pending_begin + f.next];
        if (!pc.resolved) {
          Resolve(f, &pc);
          pc.resolved = true;
        }
        if (const ProbabilityBounds* b = Find(pc.expr)) {
          Fold(&f, *b, pc);
          ++f.next;
          continue;
        }
        PushOrSettle(pc.expr);
        continue;
      }
      ProbabilityBounds result = f.acc;
      ExprId expr = f.expr;
      pending_.resize(f.pending_begin);
      members_.resize(f.members_base);
      frames_.pop_back();
      Settle(expr, result);
    }
    return *Find(e);
  }

 private:
  enum class Combine : uint8_t { kOr, kAnd, kShannon, kRedirect };

  struct PendingChild {
    enum class Kind : uint8_t { kExpr, kCombine, kBranch };
    Kind kind = Kind::kExpr;
    ExprId expr = kInvalidExpr;
    bool resolved = false;
    uint32_t members_begin = 0;  ///< kCombine: range in members_.
    uint32_t members_count = 0;
    int64_t branch_value = 0;  ///< kBranch.
    double weight = 0.0;       ///< kBranch: P_x[branch_value].
  };

  struct Frame {
    ExprId expr = kInvalidExpr;
    Combine combine = Combine::kOr;
    ExprKind combine_kind = ExprKind::kAddS;  ///< Op of kCombine children.
    VarId var = 0;                            ///< kShannon.
    ProbabilityBounds acc{0.0, 0.0};
    uint32_t next = 0;
    uint32_t pending_begin = 0;
    uint32_t pending_count = 0;
    uint32_t members_base = 0;
  };

  const ProbabilityBounds* Find(ExprId e) const {
    if (e < has_.size() && has_[e]) return &memo_[e];
    return nullptr;
  }

  void Settle(ExprId e, ProbabilityBounds b) {
    if (e >= has_.size()) {
      has_.resize(pool_->NumNodes(), 0);
      memo_.resize(pool_->NumNodes());
    }
    has_[e] = 1;
    memo_[e] = b;
  }

  bool ConsumeBudget() {
    if (budget_ == 0) return false;
    --budget_;
    return true;
  }

  // Probability that a variable evaluates to a non-zero semiring value.
  double VarProbability(VarId x) {
    const Distribution& d = variables_.DistributionOf(x);
    return std::max(0.0, d.TotalMass() - d.ProbOf(0));
  }

  /// Settles `e` directly (constants, variables, exhausted budget) or
  /// pushes a decomposition frame.
  void PushOrSettle(ExprId e) {
    const ExprNode n = pool_->node(e);  // Copy: the pool may grow below.
    if (n.kind == ExprKind::kConstS) {
      Settle(e, Exact(n.value != 0 ? 1.0 : 0.0));
      return;
    }
    if (!ConsumeBudget()) {
      Settle(e, {0.0, 1.0});
      return;
    }
    switch (n.kind) {
      case ExprKind::kVar:
        Settle(e, Exact(VarProbability(n.var())));
        return;
      case ExprKind::kAddS:
      case ExprKind::kMulS: {
        // Group children into independent components; OR/AND-combine the
        // components' bounds (monotone), Shannon within a shared one.
        std::vector<std::vector<ExprId>> groups = Components(n.children());
        if (groups.size() == 1) {
          PushShannon(e, n);
          return;
        }
        Frame f;
        f.expr = e;
        f.combine = n.kind == ExprKind::kAddS ? Combine::kOr : Combine::kAnd;
        f.combine_kind = n.kind;
        f.acc = n.kind == ExprKind::kAddS ? Exact(0.0) : Exact(1.0);
        f.pending_begin = static_cast<uint32_t>(pending_.size());
        f.members_base = static_cast<uint32_t>(members_.size());
        for (const std::vector<ExprId>& group : groups) {
          PendingChild pc;
          pc.kind = PendingChild::Kind::kCombine;
          pc.members_begin = static_cast<uint32_t>(members_.size());
          members_.insert(members_.end(), group.begin(), group.end());
          pc.members_count = static_cast<uint32_t>(group.size());
          pending_.push_back(pc);
        }
        f.pending_count = static_cast<uint32_t>(groups.size());
        frames_.push_back(f);
        return;
      }
      case ExprKind::kCmp: {
        ExprId pruned = PruneComparison(*pool_, e);
        if (pruned != e) {
          Frame f;
          f.expr = e;
          f.combine = Combine::kRedirect;
          f.pending_begin = static_cast<uint32_t>(pending_.size());
          f.members_base = static_cast<uint32_t>(members_.size());
          PendingChild pc;
          pc.kind = PendingChild::Kind::kExpr;
          pc.expr = pruned;
          pc.resolved = true;
          pending_.push_back(pc);
          f.pending_count = 1;
          frames_.push_back(f);
          return;
        }
        PushShannon(e, n);
        return;
      }
      case ExprKind::kTensor:
      case ExprKind::kAddM:
      case ExprKind::kConstM:
        PVC_FAIL("ApproximateProbability expects a semiring-sorted "
                 "(Boolean) expression");
      case ExprKind::kConstS:
        break;  // Handled above.
    }
    PVC_FAIL("unreachable");
  }

  // Mutex decomposition (Eq. 10) on the first variable: interval-weighted
  // mixture over the branches, substituted lazily in branch order.
  void PushShannon(ExprId e, const ExprNode& n) {
    VarId x = n.vars().front();
    Frame f;
    f.expr = e;
    f.combine = Combine::kShannon;
    f.var = x;
    f.acc = {0.0, 0.0};
    f.pending_begin = static_cast<uint32_t>(pending_.size());
    f.members_base = static_cast<uint32_t>(members_.size());
    const Distribution& px = variables_.DistributionOf(x);
    for (const auto& [s, p] : px.entries()) {
      PendingChild pc;
      pc.kind = PendingChild::Kind::kBranch;
      pc.branch_value = s;
      pc.weight = p;
      pending_.push_back(pc);
    }
    f.pending_count = static_cast<uint32_t>(px.size());
    frames_.push_back(f);
  }

  void Resolve(const Frame& f, PendingChild* pc) {
    switch (pc->kind) {
      case PendingChild::Kind::kExpr:
        return;
      case PendingChild::Kind::kBranch:
        pc->expr = pool_->Substitute(f.expr, f.var, pc->branch_value);
        return;
      case PendingChild::Kind::kCombine: {
        const ExprId* m = members_.data() + pc->members_begin;
        pc->expr = f.combine_kind == ExprKind::kAddS
                       ? pool_->AddSRange(m, pc->members_count)
                       : pool_->MulSRange(m, pc->members_count);
        return;
      }
    }
    PVC_FAIL("unknown pending-child kind");
  }

  void Fold(Frame* f, const ProbabilityBounds& b, const PendingChild& pc) {
    switch (f->combine) {
      case Combine::kOr:
        // OR: 1 - (1-a)(1-b), monotone increasing in both.
        f->acc.low = 1.0 - (1.0 - f->acc.low) * (1.0 - b.low);
        f->acc.high = 1.0 - (1.0 - f->acc.high) * (1.0 - b.high);
        return;
      case Combine::kAnd:
        f->acc.low *= b.low;
        f->acc.high *= b.high;
        return;
      case Combine::kShannon:
        f->acc.low += pc.weight * b.low;
        f->acc.high += pc.weight * b.high;
        return;
      case Combine::kRedirect:
        f->acc = b;
        return;
    }
    PVC_FAIL("unknown combine kind");
  }

  // Connected components by shared variables (same notion as the
  // compiler), as groups of member expressions in first-occurrence order.
  std::vector<std::vector<ExprId>> Components(Span<ExprId> items) {
    std::unordered_map<VarId, size_t> owner;
    std::vector<size_t> parent(items.size());
    for (size_t i = 0; i < items.size(); ++i) parent[i] = i;
    auto find = [&](size_t i) {
      while (parent[i] != i) {
        parent[i] = parent[parent[i]];
        i = parent[i];
      }
      return i;
    };
    for (size_t i = 0; i < items.size(); ++i) {
      for (VarId v : pool_->VarsOf(items[i])) {
        auto [it, inserted] = owner.emplace(v, i);
        if (!inserted) parent[find(i)] = find(it->second);
      }
    }
    std::unordered_map<size_t, size_t> index;
    std::vector<std::vector<ExprId>> groups;
    for (size_t i = 0; i < items.size(); ++i) {
      size_t root = find(i);
      auto [it, inserted] = index.emplace(root, groups.size());
      if (inserted) groups.emplace_back();
      groups[it->second].push_back(items[i]);
    }
    return groups;
  }

  ExprPool* pool_;
  const VariableTable& variables_;
  size_t budget_;
  std::vector<ProbabilityBounds> memo_;
  std::vector<uint8_t> has_;
  std::vector<Frame> frames_;
  std::vector<PendingChild> pending_;
  std::vector<ExprId> members_;
};

}  // namespace

ProbabilityBounds ApproximateProbability(ExprPool* pool,
                                         const VariableTable& variables,
                                         ExprId e,
                                         ApproximateOptions options) {
  PVC_CHECK(pool != nullptr);
  PVC_CHECK_MSG(pool->node(e).sort == ExprSort::kSemiring,
                "bounds are defined for semiring-sorted expressions");
  PVC_CHECK_MSG(pool->semiring().kind() == SemiringKind::kBool,
                "approximate confidence computation targets the Boolean "
                "semiring");
  Approximator approximator(pool, variables, options.node_budget);
  ProbabilityBounds b = approximator.Bounds(e);
  b.low = std::clamp(b.low, 0.0, 1.0);
  b.high = std::clamp(b.high, 0.0, 1.0);
  return b;
}

std::vector<ProbabilityBounds> ApproximateBatch(const ExprPool& pool,
                                                const VariableTable& variables,
                                                const std::vector<ExprId>& exprs,
                                                ApproximateOptions options,
                                                int num_threads) {
  std::vector<ProbabilityBounds> out(exprs.size());
  ParallelFor(num_threads, exprs.size(), [&](size_t i) {
    ExprPool local(pool.semiring().kind());
    ExprId e = pool.CloneInto(&local, exprs[i]);
    out[i] = ApproximateProbability(&local, variables, e, options);
  });
  return out;
}

ProbabilityBounds ApproximateToWidth(ExprPool* pool,
                                     const VariableTable& variables, ExprId e,
                                     double epsilon, size_t max_budget) {
  size_t budget = 64;
  ProbabilityBounds best{0.0, 1.0};
  while (true) {
    ApproximateOptions options;
    options.node_budget = budget;
    ProbabilityBounds b = ApproximateProbability(pool, variables, e, options);
    // Intervals from independent runs can be intersected.
    best.low = std::max(best.low, b.low);
    best.high = std::min(best.high, b.high);
    if (best.Width() <= epsilon || budget >= max_budget) return best;
    budget *= 2;
  }
}

}  // namespace pvcdb
