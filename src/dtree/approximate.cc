#include "src/dtree/approximate.h"

#include <algorithm>
#include <unordered_map>

#include "src/dtree/prune.h"
#include "src/util/check.h"
#include "src/util/parallel.h"

namespace pvcdb {

namespace {

ProbabilityBounds Exact(double p) { return {p, p}; }

class Approximator {
 public:
  Approximator(ExprPool* pool, const VariableTable& variables, size_t budget)
      : pool_(pool), variables_(variables), budget_(budget) {}

  ProbabilityBounds Bounds(ExprId e) {
    auto it = memo_.find(e);
    if (it != memo_.end()) return it->second;
    ProbabilityBounds result = ComputeBounds(e);
    memo_.emplace(e, result);
    return result;
  }

 private:
  bool ConsumeBudget() {
    if (budget_ == 0) return false;
    --budget_;
    return true;
  }

  // Probability that a variable evaluates to a non-zero semiring value.
  double VarProbability(VarId x) {
    const Distribution& d = variables_.DistributionOf(x);
    return std::max(0.0, d.TotalMass() - d.ProbOf(0));
  }

  ProbabilityBounds ShannonBounds(ExprId e) {
    // Mutex decomposition (Eq. 10) on the first variable: interval-weighted
    // mixture over the branches.
    const ExprNode& n = pool_->node(e);
    VarId x = n.vars.front();
    ProbabilityBounds acc{0.0, 0.0};
    for (const auto& [s, p] : variables_.DistributionOf(x).entries()) {
      ExprId branch = pool_->Substitute(e, x, s);
      ProbabilityBounds b = Bounds(branch);
      acc.low += p * b.low;
      acc.high += p * b.high;
    }
    return acc;
  }

  ProbabilityBounds ComputeBounds(ExprId e) {
    const ExprNode n = pool_->node(e);  // Copy: pool may grow below.
    if (n.kind == ExprKind::kConstS) {
      return Exact(n.value != 0 ? 1.0 : 0.0);
    }
    if (!ConsumeBudget()) return {0.0, 1.0};
    switch (n.kind) {
      case ExprKind::kVar:
        return Exact(VarProbability(n.var()));
      case ExprKind::kAddS: {
        // Group children into independent components; OR-combine bounds of
        // components (monotone), Shannon within a shared component.
        std::vector<std::vector<ExprId>> groups = Components(n.children);
        if (groups.size() == 1) return ShannonBounds(e);
        ProbabilityBounds acc = Exact(0.0);
        for (std::vector<ExprId>& group : groups) {
          ExprId sub = pool_->AddS(std::move(group));
          ProbabilityBounds b = Bounds(sub);
          // OR: 1 - (1-a)(1-b), monotone increasing in both.
          acc.low = 1.0 - (1.0 - acc.low) * (1.0 - b.low);
          acc.high = 1.0 - (1.0 - acc.high) * (1.0 - b.high);
        }
        return acc;
      }
      case ExprKind::kMulS: {
        std::vector<std::vector<ExprId>> groups = Components(n.children);
        if (groups.size() == 1) return ShannonBounds(e);
        ProbabilityBounds acc = Exact(1.0);
        for (std::vector<ExprId>& group : groups) {
          ExprId sub = pool_->MulS(std::move(group));
          ProbabilityBounds b = Bounds(sub);
          acc.low *= b.low;
          acc.high *= b.high;
        }
        return acc;
      }
      case ExprKind::kCmp: {
        ExprId pruned = PruneComparison(*pool_, e);
        if (pruned != e) return Bounds(pruned);
        return ShannonBounds(e);
      }
      case ExprKind::kTensor:
      case ExprKind::kAddM:
      case ExprKind::kConstM:
        PVC_FAIL("ApproximateProbability expects a semiring-sorted "
                 "(Boolean) expression");
      case ExprKind::kConstS:
        break;  // Handled above.
    }
    PVC_FAIL("unreachable");
  }

  // Connected components by shared variables (same notion as the compiler).
  std::vector<std::vector<ExprId>> Components(
      const std::vector<ExprId>& items) {
    std::unordered_map<VarId, size_t> owner;
    std::vector<size_t> parent(items.size());
    for (size_t i = 0; i < items.size(); ++i) parent[i] = i;
    auto find = [&](size_t i) {
      while (parent[i] != i) {
        parent[i] = parent[parent[i]];
        i = parent[i];
      }
      return i;
    };
    for (size_t i = 0; i < items.size(); ++i) {
      for (VarId v : pool_->VarsOf(items[i])) {
        auto [it, inserted] = owner.emplace(v, i);
        if (!inserted) parent[find(i)] = find(it->second);
      }
    }
    std::unordered_map<size_t, size_t> index;
    std::vector<std::vector<ExprId>> groups;
    for (size_t i = 0; i < items.size(); ++i) {
      size_t root = find(i);
      auto [it, inserted] = index.emplace(root, groups.size());
      if (inserted) groups.emplace_back();
      groups[it->second].push_back(items[i]);
    }
    return groups;
  }

  ExprPool* pool_;
  const VariableTable& variables_;
  size_t budget_;
  std::unordered_map<ExprId, ProbabilityBounds> memo_;
};

}  // namespace

ProbabilityBounds ApproximateProbability(ExprPool* pool,
                                         const VariableTable& variables,
                                         ExprId e,
                                         ApproximateOptions options) {
  PVC_CHECK(pool != nullptr);
  PVC_CHECK_MSG(pool->node(e).sort == ExprSort::kSemiring,
                "bounds are defined for semiring-sorted expressions");
  PVC_CHECK_MSG(pool->semiring().kind() == SemiringKind::kBool,
                "approximate confidence computation targets the Boolean "
                "semiring");
  Approximator approximator(pool, variables, options.node_budget);
  ProbabilityBounds b = approximator.Bounds(e);
  b.low = std::clamp(b.low, 0.0, 1.0);
  b.high = std::clamp(b.high, 0.0, 1.0);
  return b;
}

std::vector<ProbabilityBounds> ApproximateBatch(const ExprPool& pool,
                                                const VariableTable& variables,
                                                const std::vector<ExprId>& exprs,
                                                ApproximateOptions options,
                                                int num_threads) {
  std::vector<ProbabilityBounds> out(exprs.size());
  ParallelFor(num_threads, exprs.size(), [&](size_t i) {
    ExprPool local(pool.semiring().kind());
    ExprId e = pool.CloneInto(&local, exprs[i]);
    out[i] = ApproximateProbability(&local, variables, e, options);
  });
  return out;
}

ProbabilityBounds ApproximateToWidth(ExprPool* pool,
                                     const VariableTable& variables, ExprId e,
                                     double epsilon, size_t max_budget) {
  size_t budget = 64;
  ProbabilityBounds best{0.0, 1.0};
  while (true) {
    ApproximateOptions options;
    options.node_budget = budget;
    ProbabilityBounds b = ApproximateProbability(pool, variables, e, options);
    // Intervals from independent runs can be intersected.
    best.low = std::max(best.low, b.low);
    best.high = std::min(best.high, b.high);
    if (best.Width() <= epsilon || budget >= max_budget) return best;
    budget *= 2;
  }
}

}  // namespace pvcdb
