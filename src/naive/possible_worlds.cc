#include "src/naive/possible_worlds.h"

#include <algorithm>
#include <unordered_map>

#include "src/expr/eval.h"
#include "src/util/check.h"

namespace pvcdb {

namespace {

// Collects the sorted union of the variables of `exprs`.
std::vector<VarId> UnionVars(const ExprPool& pool,
                             const std::vector<ExprId>& exprs) {
  std::vector<VarId> vars;
  for (ExprId e : exprs) {
    Span<VarId> ev = pool.VarsOf(e);
    std::vector<VarId> merged;
    std::set_union(vars.begin(), vars.end(), ev.begin(), ev.end(),
                   std::back_inserter(merged));
    vars = std::move(merged);
  }
  return vars;
}

// Calls `visit(nu, prob)` for every world over `vars`.
template <typename Visitor>
void ForEachWorld(const VariableTable& variables,
                  Span<VarId> vars, uint64_t max_worlds,
                  Visitor&& visit) {
  uint64_t world_count = 1;
  for (VarId v : vars) {
    uint64_t support = variables.DistributionOf(v).size();
    PVC_CHECK_MSG(world_count <= max_worlds / std::max<uint64_t>(support, 1),
                  "world enumeration exceeds budget of " << max_worlds);
    world_count *= support;
  }
  std::unordered_map<VarId, int64_t> nu;
  auto rec = [&](auto&& self, size_t index, double prob) -> void {
    if (index == vars.size()) {
      visit(nu, prob);
      return;
    }
    VarId v = vars[index];
    for (const auto& [s, p] : variables.DistributionOf(v).entries()) {
      nu[v] = s;
      self(self, index + 1, prob * p);
    }
  };
  rec(rec, 0, 1.0);
}

}  // namespace

Distribution EnumerateDistribution(const ExprPool& pool,
                                   const VariableTable& variables, ExprId e,
                                   uint64_t max_worlds) {
  std::vector<Distribution::Entry> entries;
  ForEachWorld(variables, pool.VarsOf(e), max_worlds,
               [&](const std::unordered_map<VarId, int64_t>& nu, double p) {
                 entries.push_back({EvalExpr(pool, e, nu), p});
               });
  return Distribution::FromPairs(std::move(entries));
}

JointDistribution EnumerateJointDistribution(
    const ExprPool& pool, const VariableTable& variables,
    const std::vector<ExprId>& exprs, uint64_t max_worlds) {
  JointDistribution joint;
  ForEachWorld(variables, UnionVars(pool, exprs), max_worlds,
               [&](const std::unordered_map<VarId, int64_t>& nu, double p) {
                 std::vector<int64_t> tuple;
                 tuple.reserve(exprs.size());
                 for (ExprId e : exprs) tuple.push_back(EvalExpr(pool, e, nu));
                 joint[tuple] += p;
               });
  return joint;
}

}  // namespace pvcdb
