// Monte-Carlo estimation of expression distributions.
//
// The sampling baseline representing the MCDB / PIP family of systems
// ([10, 12, 22] in the paper): draw worlds nu ~ Pr, evaluate, and report
// the empirical distribution. Converges at the usual O(1/sqrt(n)) rate and
// is the comparator for the exact d-tree technique.

#ifndef PVCDB_NAIVE_MONTE_CARLO_H_
#define PVCDB_NAIVE_MONTE_CARLO_H_

#include <cstdint>

#include "src/expr/expr.h"
#include "src/prob/distribution.h"
#include "src/prob/variable.h"

namespace pvcdb {

/// Empirical distribution of `e` from `num_samples` sampled worlds.
Distribution MonteCarloDistribution(const ExprPool& pool,
                                    const VariableTable& variables, ExprId e,
                                    size_t num_samples, uint64_t seed);

}  // namespace pvcdb

#endif  // PVCDB_NAIVE_MONTE_CARLO_H_
