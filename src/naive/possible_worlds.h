// Exact probability computation by possible-world enumeration.
//
// Enumerates every valuation nu in Omega (the product of the supports of
// the variables occurring in the expression, Definition 1), evaluates the
// expression in each world, and accumulates Pr(nu) per outcome. Runs in
// time exponential in the number of variables; it is the ground truth the
// d-tree engine is property-tested against, and the "no knowledge
// compilation" baseline.

#ifndef PVCDB_NAIVE_POSSIBLE_WORLDS_H_
#define PVCDB_NAIVE_POSSIBLE_WORLDS_H_

#include <vector>

#include "src/dtree/joint.h"
#include "src/expr/expr.h"
#include "src/prob/distribution.h"
#include "src/prob/variable.h"

namespace pvcdb {

/// Exact distribution of `e` by world enumeration. Checks that the number
/// of worlds does not exceed `max_worlds`.
Distribution EnumerateDistribution(const ExprPool& pool,
                                   const VariableTable& variables, ExprId e,
                                   uint64_t max_worlds = (1ULL << 22));

/// Exact joint distribution of several expressions by world enumeration
/// over the union of their variables.
JointDistribution EnumerateJointDistribution(
    const ExprPool& pool, const VariableTable& variables,
    const std::vector<ExprId>& exprs, uint64_t max_worlds = (1ULL << 22));

}  // namespace pvcdb

#endif  // PVCDB_NAIVE_POSSIBLE_WORLDS_H_
