#include "src/naive/monte_carlo.h"

#include <unordered_map>

#include "src/expr/eval.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace pvcdb {

Distribution MonteCarloDistribution(const ExprPool& pool,
                                    const VariableTable& variables, ExprId e,
                                    size_t num_samples, uint64_t seed) {
  PVC_CHECK_MSG(num_samples > 0, "need at least one sample");
  Rng rng(seed);
  Span<VarId> vars = pool.VarsOf(e);
  std::unordered_map<VarId, int64_t> nu;
  std::unordered_map<int64_t, double> histogram;
  const double weight = 1.0 / static_cast<double>(num_samples);
  for (size_t i = 0; i < num_samples; ++i) {
    for (VarId v : vars) {
      const Distribution& d = variables.DistributionOf(v);
      double u = rng.UniformDouble(0.0, 1.0);
      double cum = 0.0;
      int64_t drawn = d.entries().back().first;
      for (const auto& [s, p] : d.entries()) {
        cum += p;
        if (u <= cum) {
          drawn = s;
          break;
        }
      }
      nu[v] = drawn;
    }
    histogram[EvalExpr(pool, e, nu)] += weight;
  }
  std::vector<Distribution::Entry> entries(histogram.begin(), histogram.end());
  return Distribution::FromPairs(std::move(entries));
}

}  // namespace pvcdb
